//! Training-run observability for the EMBA reproduction.
//!
//! The training loop in `emba-core` is deliberately silent: it returns a
//! final report and nothing else, which makes divergence (a NaN loss, a dead
//! learning-rate schedule, an early stop that never fires) invisible until
//! the run is over. This crate adds a thin observer seam:
//!
//! * [`TrainObserver`] — a trait with default no-op hooks for every
//!   interesting moment of a run: epoch boundaries, optimizer steps (loss,
//!   pre-clip gradient norm, effective learning rate, wall time), evaluation
//!   passes, best-state checkpointing, and non-finite events.
//! * [`JsonlLogger`] — streams one JSON object per event to any `Write`
//!   sink, conventionally `results/runs/<name>.jsonl`. Every object carries
//!   an `"event"` discriminator; non-finite floats are sanitized to `null`
//!   so the log always parses.
//! * [`SummaryBuilder`] — folds the same event stream into a [`RunSummary`]:
//!   per-epoch loss curve, gradient-norm statistics, scratch-pool hit rate
//!   (via [`emba_tensor::pool::stats`]), and per-phase timers.
//! * [`TraceSession`] — the usual pairing of both, plus the output path.
//!
//! Two sibling modules extend the run-level view down to individual ops:
//! [`metrics`] (named counters, gauges, and log-spaced latency histograms
//! for the inference path) and [`prof_export`] (Chrome-trace JSON, folded
//! flamegraph stacks, and per-op tables rendered from the tape-op profiler
//! in `emba_tensor::prof`). A profiler report can be merged into the
//! [`RunSummary`] final line via [`SummaryBuilder::record_profile`].
//!
//! The crate deliberately does not depend on `emba-core` (core depends on
//! it), so hooks traffic only in plain numbers, strings, and the record
//! structs defined here.

pub mod expo;
pub mod metrics;
pub mod prof_export;
pub mod serve_events;

use std::fs::{self, File};
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};

use emba_tensor::pool;
use emba_tensor::prof::ProfReport;
use serde::{Deserialize, Serialize, Value};

pub use expo::{parse_exposition, prometheus_text, sanitize_metric_name, validate_exposition};
pub use metrics::{HistogramSummary, MetricsSnapshot};
pub use prof_export::{OpRow, PhaseRow, TraceSpan};
pub use serve_events::{parse_postmortem, write_postmortem, Postmortem, ServeSpanEvent, SpanKind};

/// Static facts about a run, emitted once before the first epoch.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunMeta {
    /// Model name as reported by the matcher.
    pub model: String,
    /// Number of training examples.
    pub train_examples: usize,
    /// Number of validation examples.
    pub valid_examples: usize,
    /// Configured epoch budget.
    pub epochs: usize,
    /// Optimizer batch size.
    pub batch_size: usize,
    /// Peak learning rate of the schedule.
    pub base_lr: f64,
}

/// One optimizer step: the numbers a divergence postmortem needs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StepRecord {
    /// Zero-based epoch the step belongs to.
    pub epoch: usize,
    /// Global optimizer step index (zero-based).
    pub step: u64,
    /// Mean training loss over the examples in this batch.
    pub loss: f64,
    /// Global L2 gradient norm *before* clipping.
    pub grad_norm: f64,
    /// Effective learning rate applied by the schedule at this step.
    pub lr: f64,
    /// Wall-clock time of the batch in milliseconds.
    pub wall_ms: f64,
    /// Number of examples in the batch.
    pub examples: usize,
}

/// One evaluation pass over a split.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EvalRecord {
    /// Epoch after which the evaluation ran.
    pub epoch: usize,
    /// Split name: `"valid"` or `"test"`.
    pub split: String,
    /// Precision on the positive (match) class.
    pub precision: f64,
    /// Recall on the positive (match) class.
    pub recall: f64,
    /// F1 on the positive (match) class.
    pub f1: f64,
    /// Overall accuracy.
    pub accuracy: f64,
    /// Wall-clock time of the pass in seconds.
    pub wall_secs: f64,
}

/// Aggregate view of a finished run, assembled by [`SummaryBuilder`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunSummary {
    /// Epochs actually executed (early stopping may cut the budget short).
    pub epochs_run: usize,
    /// Optimizer steps taken.
    pub steps: u64,
    /// Mean training loss per epoch, in epoch order.
    pub loss_curve: Vec<f64>,
    /// Smallest pre-clip gradient norm observed.
    pub grad_norm_min: f64,
    /// Mean pre-clip gradient norm over all steps.
    pub grad_norm_mean: f64,
    /// Largest pre-clip gradient norm observed.
    pub grad_norm_max: f64,
    /// Pre-clip gradient norm of the final step.
    pub grad_norm_last: f64,
    /// Epoch whose validation F1 was best.
    pub best_epoch: usize,
    /// Best validation F1 seen.
    pub best_valid_f1: f64,
    /// Scratch-pool buffer hits during the run.
    pub pool_hits: u64,
    /// Scratch-pool buffer misses (fresh allocations) during the run.
    pub pool_misses: u64,
    /// `hits / (hits + misses)`, or 0 when the pool went untouched.
    pub pool_hit_rate: f64,
    /// Seconds spent in optimizer steps (forward + backward + update).
    pub train_secs: f64,
    /// Seconds spent in evaluation passes.
    pub eval_secs: f64,
    /// Times the best state was (re)captured.
    pub checkpoint_saves: usize,
    /// Non-finite events reported (guard hits, NaN losses, NaN metrics).
    pub non_finite_events: usize,
    /// Times the run continued from a durable snapshot instead of scratch.
    #[serde(default)]
    pub resumes: usize,
    /// Durable snapshots written to the on-disk store during the run.
    #[serde(default)]
    pub checkpoint_writes: usize,
    /// Corrupt/unreadable snapshots skipped while searching for a valid one.
    #[serde(default)]
    pub corrupt_skipped: usize,
    /// Per-op profiler table (aggregated across phases, descending self
    /// time); empty when the run was not profiled.
    #[serde(default)]
    pub profile_ops: Vec<OpRow>,
    /// Phase wall-time totals in stable path-sorted order, so summaries of
    /// identical runs diff byte-for-byte; empty when not profiled.
    #[serde(default)]
    pub phase_timers: Vec<PhaseRow>,
    /// Catalog-matching section (blocking + encoding-cache statistics);
    /// `None` when the run never matched a catalog.
    #[serde(default)]
    pub catalog: Option<CatalogSummary>,
    /// Match-serving section (queueing, batching, and deadline statistics
    /// from `emba-serve`); `None` when the run never served requests.
    #[serde(default)]
    pub serve: Option<ServeSummary>,
}

/// What a catalog-matching pass did and what it cost — the trace-side
/// mirror of the core crate's catalog report, attached to [`RunSummary`]
/// when a traced run drives `match_catalog`.
///
/// In the JSONL schema this lands inside the final `run_summary` line as an
/// optional `catalog` object; summaries written before this field existed
/// parse with `catalog: null`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CatalogSummary {
    /// Catalog size in records.
    pub records: usize,
    /// Candidate pairs emitted by the blocking index.
    pub candidate_pairs: usize,
    /// Pairs scored through the AOA head.
    pub scored_pairs: usize,
    /// Pairs at or above the match threshold.
    pub matches: usize,
    /// Backbone record encodes performed (cache misses).
    pub encodes: u64,
    /// Encoding-cache hits.
    pub cache_hits: u64,
    /// Encoding-cache misses.
    pub cache_misses: u64,
    /// `hits / (hits + misses)`.
    pub cache_hit_rate: f64,
    /// `encodes / scored_pairs` — the amortization headline.
    pub encodes_per_pair: f64,
    /// Blocking recall against known clusters; negative when unknown.
    pub blocking_recall: f64,
    /// Blocking-index build + candidate emission seconds.
    pub blocking_secs: f64,
    /// Backbone encoding seconds.
    pub encode_secs: f64,
    /// AOA + match-head scoring seconds.
    pub score_secs: f64,
    /// End-to-end wall seconds.
    pub total_secs: f64,
    /// `scored_pairs / total_secs`.
    pub pairs_per_sec: f64,
}

/// What a serving session did — the trace-side mirror of `emba-serve`'s
/// `ServerSnapshot`, attached to [`RunSummary`] when a traced run drives a
/// serving engine.
///
/// In the JSONL schema this lands inside the final `run_summary` line as an
/// optional `serve` object; summaries written before this field existed
/// parse with `serve: null`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServeSummary {
    /// Requests accepted onto the queue.
    pub enqueued: u64,
    /// Requests answered with a probability.
    pub scored: u64,
    /// Requests answered expired (deadline passed while queued).
    pub expired: u64,
    /// Requests shed at admission (queue full on arrival). Zero in
    /// summaries written before PR 8.
    #[serde(default)]
    pub rejected: u64,
    /// Requests shed by the deadline-aware high-water policy. Zero in
    /// summaries written before PR 8.
    #[serde(default)]
    pub shed: u64,
    /// Requests answered `Failed` (flush panic or non-finite probability).
    /// Zero in summaries written before PR 8.
    #[serde(default)]
    pub failed: u64,
    /// Successful matcher restarts after a fault. Zero in summaries
    /// written before PR 8.
    #[serde(default)]
    pub restarts: u64,
    /// Whether the engine was degraded (matcher suspect, restart pending)
    /// when the summary was captured. `false` in summaries written before
    /// PR 8.
    #[serde(default)]
    pub degraded: bool,
    /// Times the supervisor entered the degraded state. Zero in summaries
    /// written before PR 9.
    #[serde(default)]
    pub degraded_entries: u64,
    /// Cache keys quarantined as suspected poison inputs. Zero in
    /// summaries written before PR 9.
    #[serde(default)]
    pub quarantined: u64,
    /// Flight-recorder postmortem dumps written. Zero in summaries written
    /// before PR 9.
    #[serde(default)]
    pub postmortems: u64,
    /// Span events recorded by the flight recorder. Zero in summaries
    /// written before PR 9 (or with tracing disabled).
    #[serde(default)]
    pub trace_events: u64,
    /// Span events the flight-recorder ring overwrote. Zero in summaries
    /// written before PR 9.
    #[serde(default)]
    pub trace_dropped: u64,
    /// Batches flushed.
    pub flushes: u64,
    /// Backbone record encodes (cache misses actually computed).
    pub encodes: u64,
    /// Largest queue depth observed.
    pub peak_queue_depth: usize,
    /// Encoding-cache hits across all requests.
    pub cache_hits: u64,
    /// Encoding-cache misses.
    pub cache_misses: u64,
    /// `hits / (hits + misses)`.
    pub cache_hit_rate: f64,
    /// Distribution of flush batch sizes.
    pub batch_size: metrics::HistogramSummary,
    /// Per-request enqueue→answer latency, nanoseconds.
    pub request_latency: metrics::HistogramSummary,
    /// Kernel backend that served the run (`"f32"`, `"int8-avx2"`,
    /// `"int8-scalar"`, ...). Empty in summaries written before PR 10.
    #[serde(default)]
    pub backend: String,
}

/// Hooks into a training run. Every method has a no-op default, so observers
/// implement only what they care about.
pub trait TrainObserver {
    /// Called once before the first epoch.
    fn on_run_start(&mut self, _meta: &RunMeta) {}
    /// Called at the start of each epoch (zero-based).
    fn on_epoch_start(&mut self, _epoch: usize) {}
    /// Called after each optimizer step.
    fn on_step(&mut self, _record: &StepRecord) {}
    /// Called at the end of each epoch with its mean training loss.
    fn on_epoch_end(&mut self, _epoch: usize, _mean_loss: f64) {}
    /// Called after each evaluation pass.
    fn on_eval(&mut self, _record: &EvalRecord) {}
    /// Called when the best-so-far state is captured.
    fn on_checkpoint_save(&mut self, _epoch: usize, _valid_f1: f64) {}
    /// Called when the best state is restored at the end of the run.
    fn on_checkpoint_restore(&mut self, _epoch: usize) {}
    /// Called when a non-finite value is detected. `source` identifies where
    /// (`"op:softmax_rows"`, `"train_loss"`, `"valid_f1"`); `detail` is a
    /// human-readable elaboration.
    fn on_non_finite(&mut self, _source: &str, _detail: &str) {}
    /// Called once when a run continues from a durable snapshot instead of
    /// starting from scratch: the epoch and global step it resumes at.
    fn on_resume(&mut self, _epoch: usize, _step: u64) {}
    /// Called after a durable snapshot lands on disk (post-rename, so the
    /// bytes survive a crash from this moment on). `seq` is the store's
    /// snapshot sequence number.
    fn on_checkpoint_write(&mut self, _seq: u64, _epoch: usize, _step: u64) {}
    /// Called when a corrupt, truncated, or unreadable snapshot is skipped
    /// while searching the store for the newest valid one.
    fn on_corrupt_skipped(&mut self, _file: &str, _reason: &str) {}
    /// Called once after the run with the aggregate summary.
    fn on_run_end(&mut self, _summary: &RunSummary) {}
}

/// Observer that ignores every event; the default when callers pass no
/// observer of their own.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullObserver;

impl TrainObserver for NullObserver {}

/// Replaces non-finite floats with `Null`, recursively. The vendored JSON
/// writer already emits `null` for them, but sanitizing the tree keeps the
/// in-memory event copies consistent with what lands on disk.
fn sanitize(v: Value) -> Value {
    match v {
        Value::Float(f) if !f.is_finite() => Value::Null,
        Value::Array(items) => Value::Array(items.into_iter().map(sanitize).collect()),
        Value::Object(fields) => {
            Value::Object(fields.into_iter().map(|(k, v)| (k, sanitize(v))).collect())
        }
        other => other,
    }
}

/// Tags a record's object form with an `"event"` discriminator as the first
/// key and sanitizes non-finite floats.
fn tagged(event: &str, v: Value) -> Value {
    let mut fields = vec![("event".to_string(), Value::Str(event.to_string()))];
    match sanitize(v) {
        Value::Object(rest) => fields.extend(rest),
        other => fields.push(("value".to_string(), other)),
    }
    Value::Object(fields)
}

/// Streams one JSON object per observer event to a `Write` sink.
///
/// Events are written in arrival order, one per line, each with an `"event"`
/// field naming the hook. All floats in the output are finite or `null`.
/// The sink is flushed after the `run_summary` line and again on drop, so a
/// run that is killed (or panics) between events loses at most the buffered
/// tail, never the whole log — pairing with the crash harness, which
/// replays from whatever the log last recorded.
pub struct JsonlLogger<W: Write> {
    /// `None` only after [`JsonlLogger::finish`] moved the sink out (the
    /// `Option` lets `finish` coexist with the flush-on-drop impl).
    out: Option<W>,
    events: u64,
    io_error: Option<io::Error>,
}

impl JsonlLogger<BufWriter<File>> {
    /// Creates `<dir>/<name>.jsonl` (and `dir` itself if missing) and logs
    /// into it.
    pub fn create(dir: &Path, name: &str) -> io::Result<(Self, PathBuf)> {
        fs::create_dir_all(dir)?;
        let path = dir.join(format!("{name}.jsonl"));
        let file = File::create(&path)?;
        Ok((Self::new(BufWriter::new(file)), path))
    }
}

impl<W: Write> JsonlLogger<W> {
    /// Wraps an arbitrary sink.
    pub fn new(out: W) -> Self {
        Self { out: Some(out), events: 0, io_error: None }
    }

    /// Number of events written so far.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Flushes the sink and surfaces any write error swallowed by the
    /// observer hooks (which cannot return `Result`).
    pub fn finish(mut self) -> io::Result<W> {
        if let Some(e) = self.io_error.take() {
            return Err(e);
        }
        let mut out = self.out.take().expect("finish consumes the logger; sink present");
        out.flush()?;
        Ok(out)
    }

    /// Writes one tagged line outside the [`TrainObserver`] vocabulary —
    /// the serving path uses this for its lifecycle events (`serve_shed`,
    /// `serve_restart`, ...) and postmortem dumps, so serving runs produce
    /// the same JSONL shape as training runs. Same sanitization and
    /// durability rules as the observer hooks.
    pub fn log_event<T: Serialize>(&mut self, event: &str, record: &T) {
        self.emit(event, record);
    }

    fn emit<T: Serialize>(&mut self, event: &str, record: &T) {
        if self.io_error.is_some() {
            return;
        }
        let Some(out) = self.out.as_mut() else { return };
        let line = serde_json::to_string(&tagged(event, record.to_value()))
            .expect("value serialization is infallible");
        if let Err(e) = writeln!(out, "{line}") {
            self.io_error = Some(e);
            return;
        }
        self.events += 1;
        // The summary is the last—and most load-bearing—line; make it
        // durable immediately rather than waiting for finish/drop.
        if event == "run_summary" {
            if let Err(e) = out.flush() {
                self.io_error = Some(e);
            }
        }
    }
}

impl<W: Write> Drop for JsonlLogger<W> {
    fn drop(&mut self) {
        // Best-effort: an abandoned logger (panic unwind, early return)
        // still pushes its buffered lines to the sink.
        if let Some(out) = self.out.as_mut() {
            let _ = out.flush();
        }
    }
}

impl<W: Write> TrainObserver for JsonlLogger<W> {
    fn on_run_start(&mut self, meta: &RunMeta) {
        self.emit("run_start", meta);
    }
    fn on_epoch_start(&mut self, epoch: usize) {
        self.emit("epoch_start", &EpochEvent { epoch, mean_loss: None });
    }
    fn on_step(&mut self, record: &StepRecord) {
        self.emit("step", record);
    }
    fn on_epoch_end(&mut self, epoch: usize, mean_loss: f64) {
        self.emit("epoch_end", &EpochEvent { epoch, mean_loss: Some(mean_loss) });
    }
    fn on_eval(&mut self, record: &EvalRecord) {
        self.emit("eval", record);
    }
    fn on_checkpoint_save(&mut self, epoch: usize, valid_f1: f64) {
        self.emit("checkpoint_save", &CheckpointEvent { epoch, valid_f1: Some(valid_f1) });
    }
    fn on_checkpoint_restore(&mut self, epoch: usize) {
        self.emit("checkpoint_restore", &CheckpointEvent { epoch, valid_f1: None });
    }
    fn on_non_finite(&mut self, source: &str, detail: &str) {
        self.emit(
            "non_finite",
            &NonFiniteEvent { source: source.to_string(), detail: detail.to_string() },
        );
    }
    fn on_resume(&mut self, epoch: usize, step: u64) {
        self.emit("resume", &ResumeEvent { epoch, step });
    }
    fn on_checkpoint_write(&mut self, seq: u64, epoch: usize, step: u64) {
        self.emit("checkpoint_write", &CheckpointWriteEvent { seq, epoch, step });
    }
    fn on_corrupt_skipped(&mut self, file: &str, reason: &str) {
        self.emit(
            "corrupt_skipped",
            &CorruptSkippedEvent { file: file.to_string(), reason: reason.to_string() },
        );
    }
    fn on_run_end(&mut self, summary: &RunSummary) {
        self.emit("run_summary", summary);
    }
}

#[derive(Serialize, Deserialize)]
struct EpochEvent {
    epoch: usize,
    mean_loss: Option<f64>,
}

#[derive(Serialize, Deserialize)]
struct CheckpointEvent {
    epoch: usize,
    valid_f1: Option<f64>,
}

#[derive(Serialize, Deserialize)]
struct NonFiniteEvent {
    source: String,
    detail: String,
}

#[derive(Serialize, Deserialize)]
struct ResumeEvent {
    epoch: usize,
    step: u64,
}

#[derive(Serialize, Deserialize)]
struct CheckpointWriteEvent {
    seq: u64,
    epoch: usize,
    step: u64,
}

#[derive(Serialize, Deserialize)]
struct CorruptSkippedEvent {
    file: String,
    reason: String,
}

/// Folds the observer event stream into a [`RunSummary`].
///
/// Pool statistics are measured as a delta from construction time, so a
/// builder made just before `train_matcher` reports only that run's hits and
/// misses even when earlier runs already warmed the pool.
pub struct SummaryBuilder {
    pool_baseline: pool::PoolStats,
    epochs_run: usize,
    steps: u64,
    loss_curve: Vec<f64>,
    grad_norms: Vec<f64>,
    best_epoch: usize,
    best_valid_f1: f64,
    train_secs: f64,
    eval_secs: f64,
    checkpoint_saves: usize,
    non_finite_events: usize,
    resumes: usize,
    checkpoint_writes: usize,
    corrupt_skipped: usize,
    profile_ops: Vec<OpRow>,
    phase_timers: Vec<PhaseRow>,
    catalog: Option<CatalogSummary>,
    serve: Option<ServeSummary>,
}

impl SummaryBuilder {
    /// Starts aggregating; snapshots the pool counters as the baseline.
    pub fn new() -> Self {
        Self {
            pool_baseline: pool::stats(),
            epochs_run: 0,
            steps: 0,
            loss_curve: Vec::new(),
            grad_norms: Vec::new(),
            best_epoch: 0,
            best_valid_f1: f64::NEG_INFINITY,
            train_secs: 0.0,
            eval_secs: 0.0,
            checkpoint_saves: 0,
            non_finite_events: 0,
            resumes: 0,
            checkpoint_writes: 0,
            corrupt_skipped: 0,
            profile_ops: Vec::new(),
            phase_timers: Vec::new(),
            catalog: None,
            serve: None,
        }
    }

    /// Merges a tape-op profiler report into the summary: the per-op table
    /// (descending self time) and the phase timers in stable sorted order.
    pub fn record_profile(&mut self, report: &ProfReport) {
        self.profile_ops = prof_export::op_table(report);
        self.phase_timers = prof_export::phase_rows(report);
    }

    /// Attaches a catalog-matching section to the summary (last write wins
    /// when a run matches several catalogs).
    pub fn record_catalog(&mut self, catalog: CatalogSummary) {
        self.catalog = Some(catalog);
    }

    /// Attaches a serving section to the summary (last write wins when a
    /// run snapshots the engine several times — pass the final snapshot).
    pub fn record_serve(&mut self, serve: ServeSummary) {
        self.serve = Some(serve);
    }

    /// Finalizes the aggregate.
    pub fn finish(&self) -> RunSummary {
        let now = pool::stats();
        let hits = now.hits.saturating_sub(self.pool_baseline.hits);
        let misses = now.misses.saturating_sub(self.pool_baseline.misses);
        let lookups = hits + misses;
        let (mut min, mut max, mut sum) = (f64::INFINITY, f64::NEG_INFINITY, 0.0);
        for &g in &self.grad_norms {
            min = min.min(g);
            max = max.max(g);
            sum += g;
        }
        let n = self.grad_norms.len();
        RunSummary {
            epochs_run: self.epochs_run,
            steps: self.steps,
            loss_curve: self.loss_curve.clone(),
            grad_norm_min: if n == 0 { 0.0 } else { min },
            grad_norm_mean: if n == 0 { 0.0 } else { sum / n as f64 },
            grad_norm_max: if n == 0 { 0.0 } else { max },
            grad_norm_last: self.grad_norms.last().copied().unwrap_or(0.0),
            best_epoch: self.best_epoch,
            best_valid_f1: if self.best_valid_f1.is_finite() { self.best_valid_f1 } else { 0.0 },
            pool_hits: hits,
            pool_misses: misses,
            pool_hit_rate: if lookups == 0 { 0.0 } else { hits as f64 / lookups as f64 },
            train_secs: self.train_secs,
            eval_secs: self.eval_secs,
            checkpoint_saves: self.checkpoint_saves,
            non_finite_events: self.non_finite_events,
            resumes: self.resumes,
            checkpoint_writes: self.checkpoint_writes,
            corrupt_skipped: self.corrupt_skipped,
            profile_ops: self.profile_ops.clone(),
            phase_timers: self.phase_timers.clone(),
            catalog: self.catalog.clone(),
            serve: self.serve.clone(),
        }
    }
}

impl Default for SummaryBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl TrainObserver for SummaryBuilder {
    fn on_step(&mut self, record: &StepRecord) {
        self.steps += 1;
        self.grad_norms.push(record.grad_norm);
        self.train_secs += record.wall_ms / 1e3;
    }
    fn on_epoch_end(&mut self, _epoch: usize, mean_loss: f64) {
        self.epochs_run += 1;
        self.loss_curve.push(mean_loss);
    }
    fn on_eval(&mut self, record: &EvalRecord) {
        self.eval_secs += record.wall_secs;
    }
    fn on_checkpoint_save(&mut self, epoch: usize, valid_f1: f64) {
        self.checkpoint_saves += 1;
        if valid_f1 > self.best_valid_f1 {
            self.best_valid_f1 = valid_f1;
            self.best_epoch = epoch;
        }
    }
    fn on_non_finite(&mut self, _source: &str, _detail: &str) {
        self.non_finite_events += 1;
    }
    fn on_resume(&mut self, _epoch: usize, _step: u64) {
        self.resumes += 1;
    }
    fn on_checkpoint_write(&mut self, _seq: u64, _epoch: usize, _step: u64) {
        self.checkpoint_writes += 1;
    }
    fn on_corrupt_skipped(&mut self, _file: &str, _reason: &str) {
        self.corrupt_skipped += 1;
    }
}

/// A [`JsonlLogger`] writing to `results/runs/<name>.jsonl` paired with a
/// [`SummaryBuilder`]; forwards every event to both and appends the final
/// `run_summary` line when finished.
pub struct TraceSession {
    logger: JsonlLogger<BufWriter<File>>,
    summary: SummaryBuilder,
    path: PathBuf,
}

impl TraceSession {
    /// Opens `<dir>/<name>.jsonl` for a new run.
    pub fn create(dir: &Path, name: &str) -> io::Result<Self> {
        let (logger, path) = JsonlLogger::create(dir, name)?;
        Ok(Self { logger, summary: SummaryBuilder::new(), path })
    }

    /// Path of the log file being written.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Merges a tape-op profiler report into the final summary line (see
    /// [`SummaryBuilder::record_profile`]).
    pub fn record_profile(&mut self, report: &ProfReport) {
        self.summary.record_profile(report);
    }

    /// Attaches a catalog-matching section to the final summary line (see
    /// [`SummaryBuilder::record_catalog`]).
    pub fn record_catalog(&mut self, catalog: CatalogSummary) {
        self.summary.record_catalog(catalog);
    }

    /// Attaches a serving section to the final summary line (see
    /// [`SummaryBuilder::record_serve`]).
    pub fn record_serve(&mut self, serve: ServeSummary) {
        self.summary.record_serve(serve);
    }

    /// Builds the final summary, writes it as the last JSONL line, and
    /// flushes the file.
    pub fn finish(mut self) -> io::Result<RunSummary> {
        let summary = self.summary.finish();
        self.logger.on_run_end(&summary);
        self.logger.finish()?;
        Ok(summary)
    }
}

impl TrainObserver for TraceSession {
    fn on_run_start(&mut self, meta: &RunMeta) {
        self.logger.on_run_start(meta);
        self.summary.on_run_start(meta);
    }
    fn on_epoch_start(&mut self, epoch: usize) {
        self.logger.on_epoch_start(epoch);
        self.summary.on_epoch_start(epoch);
    }
    fn on_step(&mut self, record: &StepRecord) {
        self.logger.on_step(record);
        self.summary.on_step(record);
    }
    fn on_epoch_end(&mut self, epoch: usize, mean_loss: f64) {
        self.logger.on_epoch_end(epoch, mean_loss);
        self.summary.on_epoch_end(epoch, mean_loss);
    }
    fn on_eval(&mut self, record: &EvalRecord) {
        self.logger.on_eval(record);
        self.summary.on_eval(record);
    }
    fn on_checkpoint_save(&mut self, epoch: usize, valid_f1: f64) {
        self.logger.on_checkpoint_save(epoch, valid_f1);
        self.summary.on_checkpoint_save(epoch, valid_f1);
    }
    fn on_checkpoint_restore(&mut self, epoch: usize) {
        self.logger.on_checkpoint_restore(epoch);
        self.summary.on_checkpoint_restore(epoch);
    }
    fn on_non_finite(&mut self, source: &str, detail: &str) {
        self.logger.on_non_finite(source, detail);
        self.summary.on_non_finite(source, detail);
    }
    fn on_resume(&mut self, epoch: usize, step: u64) {
        self.logger.on_resume(epoch, step);
        self.summary.on_resume(epoch, step);
    }
    fn on_checkpoint_write(&mut self, seq: u64, epoch: usize, step: u64) {
        self.logger.on_checkpoint_write(seq, epoch, step);
        self.summary.on_checkpoint_write(seq, epoch, step);
    }
    fn on_corrupt_skipped(&mut self, file: &str, reason: &str) {
        self.logger.on_corrupt_skipped(file, reason);
        self.summary.on_corrupt_skipped(file, reason);
    }
    fn on_run_end(&mut self, summary: &RunSummary) {
        self.logger.on_run_end(summary);
        self.summary.on_run_end(summary);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta() -> RunMeta {
        RunMeta {
            model: "emba-sb".to_string(),
            train_examples: 64,
            valid_examples: 16,
            epochs: 2,
            batch_size: 8,
            base_lr: 1e-3,
        }
    }

    fn step(epoch: usize, step: u64, loss: f64, grad_norm: f64) -> StepRecord {
        StepRecord { epoch, step, loss, grad_norm, lr: 1e-3, wall_ms: 2.0, examples: 8 }
    }

    fn eval(epoch: usize, split: &str, f1: f64) -> EvalRecord {
        EvalRecord {
            epoch,
            split: split.to_string(),
            precision: 0.9,
            recall: 0.8,
            f1,
            accuracy: 0.85,
            wall_secs: 0.01,
        }
    }

    /// Drives a miniature two-epoch run through any observer.
    fn drive(obs: &mut dyn TrainObserver) {
        obs.on_run_start(&meta());
        obs.on_epoch_start(0);
        obs.on_step(&step(0, 0, 0.9, 2.0));
        obs.on_step(&step(0, 1, 0.7, 4.0));
        obs.on_epoch_end(0, 0.8);
        obs.on_eval(&eval(0, "valid", 0.5));
        obs.on_checkpoint_save(0, 0.5);
        obs.on_epoch_start(1);
        obs.on_step(&step(1, 2, 0.5, 1.0));
        obs.on_epoch_end(1, 0.5);
        obs.on_eval(&eval(1, "valid", 0.6));
        obs.on_checkpoint_save(1, 0.6);
        obs.on_checkpoint_restore(1);
        obs.on_eval(&eval(2, "test", 0.55));
    }

    fn parse_lines(bytes: &[u8]) -> Vec<Value> {
        let text = std::str::from_utf8(bytes).unwrap();
        text.lines().map(|l| serde_json::from_str::<Value>(l).unwrap()).collect()
    }

    fn event_names(lines: &[Value]) -> Vec<String> {
        lines
            .iter()
            .map(|v| v.get("event").and_then(Value::as_str).unwrap().to_string())
            .collect()
    }

    #[test]
    fn jsonl_logger_emits_events_in_order() {
        let mut logger = JsonlLogger::new(Vec::new());
        drive(&mut logger);
        assert_eq!(logger.events(), 14);
        let out = logger.finish().unwrap();
        let lines = parse_lines(&out);
        assert_eq!(
            event_names(&lines),
            [
                "run_start",
                "epoch_start",
                "step",
                "step",
                "epoch_end",
                "eval",
                "checkpoint_save",
                "epoch_start",
                "step",
                "epoch_end",
                "eval",
                "checkpoint_save",
                "checkpoint_restore",
                "eval",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
        );
        // Spot-check payload fields survive the round trip.
        assert_eq!(lines[0].get("model").and_then(Value::as_str), Some("emba-sb"));
        assert_eq!(lines[2].get("loss").and_then(Value::as_f64), Some(0.9));
        assert_eq!(lines[2].get("grad_norm").and_then(Value::as_f64), Some(2.0));
        assert_eq!(lines[5].get("split").and_then(Value::as_str), Some("valid"));
    }

    /// Asserts no Float anywhere in the tree is non-finite.
    fn assert_all_floats_finite(v: &Value) {
        match v {
            Value::Float(f) => assert!(f.is_finite(), "non-finite float in log: {f}"),
            Value::Array(items) => items.iter().for_each(assert_all_floats_finite),
            Value::Object(fields) => fields.iter().for_each(|(_, v)| assert_all_floats_finite(v)),
            _ => {}
        }
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut logger = JsonlLogger::new(Vec::new());
        logger.on_step(&step(0, 0, f64::NAN, f64::INFINITY));
        logger.on_non_finite("train_loss", "loss went NaN at step 0");
        let out = logger.finish().unwrap();
        let lines = parse_lines(&out);
        assert_eq!(lines.len(), 2);
        assert!(lines[0].get("loss").unwrap().is_null());
        assert!(lines[0].get("grad_norm").unwrap().is_null());
        lines.iter().for_each(assert_all_floats_finite);
        assert_eq!(lines[1].get("source").and_then(Value::as_str), Some("train_loss"));
    }

    #[test]
    fn summary_builder_aggregates_the_run() {
        let mut b = SummaryBuilder::new();
        drive(&mut b);
        let s = b.finish();
        assert_eq!(s.epochs_run, 2);
        assert_eq!(s.steps, 3);
        assert_eq!(s.loss_curve, vec![0.8, 0.5]);
        assert_eq!(s.grad_norm_min, 1.0);
        assert_eq!(s.grad_norm_max, 4.0);
        assert!((s.grad_norm_mean - 7.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.grad_norm_last, 1.0);
        assert_eq!(s.best_epoch, 1);
        assert!((s.best_valid_f1 - 0.6).abs() < 1e-12);
        assert_eq!(s.checkpoint_saves, 2);
        assert_eq!(s.non_finite_events, 0);
        assert!(s.train_secs > 0.0);
        assert!(s.eval_secs > 0.0);
        assert!((0.0..=1.0).contains(&s.pool_hit_rate));
    }

    #[test]
    fn recovery_events_log_and_aggregate() {
        let mut logger = JsonlLogger::new(Vec::new());
        let mut builder = SummaryBuilder::new();
        for obs in [&mut logger as &mut dyn TrainObserver, &mut builder] {
            obs.on_corrupt_skipped("ckpt-000007.json", "checksum mismatch");
            obs.on_resume(3, 42);
            obs.on_checkpoint_write(8, 3, 44);
            obs.on_checkpoint_write(9, 3, 46);
        }
        let out = logger.finish().unwrap();
        let lines = parse_lines(&out);
        assert_eq!(
            event_names(&lines),
            ["corrupt_skipped", "resume", "checkpoint_write", "checkpoint_write"]
                .iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>()
        );
        assert_eq!(lines[0].get("file").and_then(Value::as_str), Some("ckpt-000007.json"));
        assert_eq!(lines[0].get("reason").and_then(Value::as_str), Some("checksum mismatch"));
        assert_eq!(lines[1].get("epoch").and_then(Value::as_u64), Some(3));
        assert_eq!(lines[1].get("step").and_then(Value::as_u64), Some(42));
        assert_eq!(lines[2].get("seq").and_then(Value::as_u64), Some(8));

        let s = builder.finish();
        assert_eq!(s.resumes, 1);
        assert_eq!(s.checkpoint_writes, 2);
        assert_eq!(s.corrupt_skipped, 1);
    }

    #[test]
    fn old_summaries_without_recovery_counters_still_parse() {
        // Pre-durability run logs lack the three recovery counters; the
        // serde defaults keep them readable.
        let mut b = SummaryBuilder::new();
        drive(&mut b);
        let v = match b.finish().to_value() {
            Value::Object(fields) => Value::Object(
                fields
                    .into_iter()
                    .filter(|(k, _)| {
                        k != "resumes" && k != "checkpoint_writes" && k != "corrupt_skipped"
                    })
                    .collect(),
            ),
            other => panic!("summary serialized to a non-object: {other:?}"),
        };
        let back = RunSummary::from_value(&v).unwrap();
        assert_eq!(back.resumes, 0);
        assert_eq!(back.checkpoint_writes, 0);
        assert_eq!(back.corrupt_skipped, 0);
        assert_eq!(back.steps, 3);
    }

    #[test]
    fn summary_of_empty_run_is_all_zero() {
        let s = SummaryBuilder::new().finish();
        assert_eq!(s.steps, 0);
        assert_eq!(s.grad_norm_min, 0.0);
        assert_eq!(s.grad_norm_mean, 0.0);
        assert_eq!(s.best_valid_f1, 0.0);
        assert!(s.loss_curve.is_empty());
    }

    #[test]
    fn summary_counts_pool_traffic_as_a_delta() {
        // Warm the pool, then measure only what happens after the baseline.
        pool::put(vec![0.0; 16]);
        let b = SummaryBuilder::new();
        pool::put(pool::take(16)); // guaranteed hit after the baseline
        let s = b.finish();
        assert!(s.pool_hits >= 1, "expected at least one hit, got {}", s.pool_hits);
    }

    #[test]
    fn trace_session_writes_summary_line_to_disk() {
        let dir = std::env::temp_dir().join(format!("emba-trace-test-{}", std::process::id()));
        let mut session = TraceSession::create(&dir, "unit").unwrap();
        let path = session.path().to_path_buf();
        drive(&mut session);
        let summary = session.finish().unwrap();
        assert_eq!(summary.steps, 3);
        let text = fs::read_to_string(&path).unwrap();
        let lines = parse_lines(text.as_bytes());
        assert_eq!(event_names(&lines).first().map(String::as_str), Some("run_start"));
        assert_eq!(event_names(&lines).last().map(String::as_str), Some("run_summary"));
        let last = lines.last().unwrap();
        assert_eq!(last.get("steps").and_then(Value::as_u64), Some(3));
        lines.iter().for_each(assert_all_floats_finite);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn null_observer_accepts_everything() {
        drive(&mut NullObserver);
    }

    /// A sink that counts flushes, for asserting the logger's durability
    /// behavior without inspecting `BufWriter` internals.
    struct FlushCounter {
        lines: Vec<u8>,
        flushes: std::rc::Rc<std::cell::Cell<usize>>,
    }

    impl Write for FlushCounter {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.lines.extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            self.flushes.set(self.flushes.get() + 1);
            Ok(())
        }
    }

    #[test]
    fn logger_flushes_after_the_summary_line_and_on_drop() {
        let flushes = std::rc::Rc::new(std::cell::Cell::new(0usize));
        let sink = FlushCounter { lines: Vec::new(), flushes: flushes.clone() };
        let mut logger = JsonlLogger::new(sink);
        logger.on_step(&step(0, 0, 0.5, 1.0));
        assert_eq!(flushes.get(), 0, "ordinary events must not force a flush");
        logger.on_run_end(&SummaryBuilder::new().finish());
        assert_eq!(flushes.get(), 1, "the summary line must be flushed immediately");
        drop(logger);
        assert_eq!(flushes.get(), 2, "dropping an unfinished logger must flush");
    }

    #[test]
    fn recorded_profile_lands_in_the_summary_in_sorted_order() {
        use emba_tensor::prof::{OpStat, PhaseStat, ProfReport};
        let report = ProfReport {
            ops: vec![
                OpStat {
                    path: "train/forward".into(),
                    op: "matmul",
                    backward: false,
                    calls: 2,
                    self_ns: 100,
                    bytes: 64,
                    flops: 400,
                },
                OpStat {
                    path: "train/backward".into(),
                    op: "matmul",
                    backward: true,
                    calls: 2,
                    self_ns: 300,
                    bytes: 128,
                    flops: 800,
                },
            ],
            phases: vec![
                PhaseStat { path: "train".into(), calls: 1, total_ns: 900 },
                PhaseStat { path: "train/backward".into(), calls: 1, total_ns: 350 },
                PhaseStat { path: "train/forward".into(), calls: 1, total_ns: 150 },
            ],
            spans: Vec::new(),
            dropped_spans: 0,
        };
        let mut b = SummaryBuilder::new();
        drive(&mut b);
        b.record_profile(&report);
        let s = b.finish();
        assert_eq!(s.profile_ops.len(), 2);
        assert!(s.profile_ops[0].backward, "backward matmul has more self time");
        let paths: Vec<&str> = s.phase_timers.iter().map(|p| p.path.as_str()).collect();
        assert_eq!(paths, ["train", "train/backward", "train/forward"]);

        // The enriched summary must survive a JSON round trip, and an old
        // summary without the profile fields must still parse (defaults).
        let v = s.to_value();
        let back = RunSummary::from_value(&v).unwrap();
        assert_eq!(back.profile_ops.len(), 2);
        assert_eq!(back.phase_timers.len(), 3);
        let stripped = match v {
            Value::Object(fields) => Value::Object(
                fields
                    .into_iter()
                    .filter(|(k, _)| k != "profile_ops" && k != "phase_timers")
                    .collect(),
            ),
            other => panic!("summary serialized to a non-object: {other:?}"),
        };
        let old = RunSummary::from_value(&stripped).unwrap();
        assert!(old.profile_ops.is_empty() && old.phase_timers.is_empty());
    }

    #[test]
    fn catalog_section_round_trips_and_old_summaries_still_parse() {
        let mut b = SummaryBuilder::new();
        drive(&mut b);
        b.record_catalog(CatalogSummary {
            records: 1000,
            candidate_pairs: 5400,
            scored_pairs: 5400,
            matches: 1200,
            encodes: 1000,
            cache_hits: 9800,
            cache_misses: 1000,
            cache_hit_rate: 9800.0 / 10800.0,
            encodes_per_pair: 1000.0 / 5400.0,
            blocking_recall: 0.98,
            blocking_secs: 0.2,
            encode_secs: 3.5,
            score_secs: 1.1,
            total_secs: 5.0,
            pairs_per_sec: 1080.0,
        });
        let s = b.finish();
        let cat = s.catalog.as_ref().expect("catalog section recorded");
        assert_eq!(cat.scored_pairs, 5400);

        let v = s.to_value();
        let back = RunSummary::from_value(&v).unwrap();
        let cat = back.catalog.expect("catalog section survives a round trip");
        assert_eq!(cat.encodes, 1000);
        assert!((cat.cache_hit_rate - 9800.0 / 10800.0).abs() < 1e-12);

        // A summary written before the catalog field existed still parses.
        let stripped = match v {
            Value::Object(fields) => Value::Object(
                fields.into_iter().filter(|(k, _)| k != "catalog").collect(),
            ),
            other => panic!("summary serialized to a non-object: {other:?}"),
        };
        let old = RunSummary::from_value(&stripped).unwrap();
        assert!(old.catalog.is_none());
    }

    #[test]
    fn serve_section_round_trips_and_old_summaries_still_parse() {
        let mut b = SummaryBuilder::new();
        drive(&mut b);
        let mut batch = metrics::Histogram::log_spaced(1.0, 2.0, 12);
        batch.record(8.0);
        batch.record(32.0);
        let mut lat = metrics::Histogram::latency_ns();
        lat.record(50_000.0);
        lat.record(2_000_000.0);
        b.record_serve(ServeSummary {
            enqueued: 400,
            scored: 385,
            expired: 10,
            rejected: 7,
            shed: 3,
            failed: 5,
            restarts: 1,
            degraded: false,
            degraded_entries: 1,
            quarantined: 2,
            postmortems: 1,
            trace_events: 1500,
            trace_dropped: 476,
            flushes: 25,
            encodes: 120,
            peak_queue_depth: 48,
            cache_hits: 680,
            cache_misses: 120,
            cache_hit_rate: 680.0 / 800.0,
            batch_size: batch.summary("serve.batch_size"),
            request_latency: lat.summary("serve.request_ns"),
            backend: "int8-avx2".to_string(),
        });
        let s = b.finish();
        let serve = s.serve.as_ref().expect("serve section recorded");
        // Every accepted request is answered exactly once; shed-at-admission
        // responses never enter `enqueued`.
        assert_eq!(serve.scored + serve.expired + serve.failed, serve.enqueued);

        let v = s.to_value();
        let back = RunSummary::from_value(&v).unwrap();
        let serve = back.serve.expect("serve section survives a round trip");
        assert_eq!(serve.flushes, 25);
        assert_eq!(serve.rejected, 7);
        assert_eq!(serve.shed, 3);
        assert_eq!(serve.failed, 5);
        assert_eq!(serve.restarts, 1);
        assert!(!serve.degraded);
        assert_eq!(serve.degraded_entries, 1);
        assert_eq!(serve.quarantined, 2);
        assert_eq!(serve.postmortems, 1);
        assert_eq!(serve.trace_events, 1500);
        assert_eq!(serve.trace_dropped, 476);
        assert_eq!(serve.backend, "int8-avx2");
        assert_eq!(serve.batch_size.count, 2);
        assert!(serve.request_latency.p50 <= serve.request_latency.p99);

        // A summary written before the serve field existed still parses.
        let stripped = match v {
            Value::Object(fields) => Value::Object(
                fields.into_iter().filter(|(k, _)| k != "serve").collect(),
            ),
            other => panic!("summary serialized to a non-object: {other:?}"),
        };
        let old = RunSummary::from_value(&stripped).unwrap();
        assert!(old.serve.is_none());

        // A PR-7 serve section (no fault-tolerance fields) still parses,
        // with the new counters defaulting to zero.
        let pr7 = match s.to_value() {
            Value::Object(fields) => Value::Object(
                fields
                    .into_iter()
                    .map(|(k, v)| {
                        if k != "serve" {
                            return (k, v);
                        }
                        let Value::Object(sf) = v else {
                            panic!("serve section serialized to a non-object")
                        };
                        let kept = sf
                            .into_iter()
                            .filter(|(sk, _)| {
                                !matches!(
                                    sk.as_str(),
                                    "rejected"
                                        | "shed"
                                        | "failed"
                                        | "restarts"
                                        | "degraded"
                                        | "degraded_entries"
                                        | "quarantined"
                                        | "postmortems"
                                        | "trace_events"
                                        | "trace_dropped"
                                )
                            })
                            .collect();
                        (k, Value::Object(kept))
                    })
                    .collect(),
            ),
            other => panic!("summary serialized to a non-object: {other:?}"),
        };
        let old = RunSummary::from_value(&pr7).unwrap();
        let serve = old.serve.expect("pr7-shaped serve section parses");
        assert_eq!(serve.rejected, 0);
        assert_eq!(serve.failed, 0);
        assert!(!serve.degraded);
        assert_eq!(serve.degraded_entries, 0);
        assert_eq!(serve.quarantined, 0);
        assert_eq!(serve.postmortems, 0);
        assert_eq!(serve.trace_events, 0);
        assert_eq!(serve.trace_dropped, 0);
    }
}
