//! Exporters for the tape-op profiler (`emba_tensor::prof`).
//!
//! Three renderings of one [`ProfReport`]:
//!
//! * [`chrome_trace`] — `chrome://tracing` / Perfetto trace-event JSON built
//!   from the phase-span timeline (`ph: "X"` complete events, microsecond
//!   timestamps);
//! * [`folded_stacks`] — flamegraph "folded" text, one
//!   `phase;path;op value` line per profiler row with values in nanoseconds
//!   (feed to `flamegraph.pl` or speedscope);
//! * [`op_table`] / [`phase_rows`] — the aggregate tables merged into the
//!   [`crate::RunSummary`] JSONL final line.
//!
//! [`write_profile_artifacts`] writes the first two under
//! `<out>/profiles/<name>.trace.json` and `<out>/profiles/<name>.folded`.

use std::collections::HashMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use emba_tensor::prof::ProfReport;
use serde::{Deserialize, Serialize, Value};

/// One per-op row of the profile table, aggregated across phases.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OpRow {
    /// Tape-op name.
    pub op: String,
    /// `true` for the op's backward pass.
    pub backward: bool,
    /// Calls across the whole run.
    pub calls: u64,
    /// Total self wall-time, nanoseconds.
    pub self_ns: u64,
    /// Total bytes produced.
    pub bytes: u64,
    /// Total estimated FLOPs.
    pub flops: u64,
}

/// One phase-timer row (stable sorted order for byte-comparable diffs).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PhaseRow {
    /// `/`-joined phase path.
    pub path: String,
    /// Times the phase ran.
    pub calls: u64,
    /// Total wall time inside, nanoseconds.
    pub total_ns: u64,
}

/// Aggregates the report's per-(phase, op) rows by `(op, backward)`, sorted
/// by descending self-time (name-ordered on ties, so equal runs render
/// identically).
pub fn op_table(report: &ProfReport) -> Vec<OpRow> {
    let mut agg: HashMap<(&str, bool), OpRow> = HashMap::new();
    for o in &report.ops {
        let row = agg.entry((o.op, o.backward)).or_insert_with(|| OpRow {
            op: o.op.to_string(),
            backward: o.backward,
            calls: 0,
            self_ns: 0,
            bytes: 0,
            flops: 0,
        });
        row.calls += o.calls;
        row.self_ns += o.self_ns;
        row.bytes += o.bytes;
        row.flops += o.flops;
    }
    let mut rows: Vec<OpRow> = agg.into_values().collect();
    rows.sort_by(|a, b| {
        b.self_ns.cmp(&a.self_ns).then_with(|| (&a.op, a.backward).cmp(&(&b.op, b.backward)))
    });
    rows
}

/// Phase timers in stable path-sorted order (the report already sorts them;
/// this just converts the type).
pub fn phase_rows(report: &ProfReport) -> Vec<PhaseRow> {
    report
        .phases
        .iter()
        .map(|p| PhaseRow { path: p.path.clone(), calls: p.calls, total_ns: p.total_ns })
        .collect()
}

/// Renders the phase-span timeline as `chrome://tracing` trace-event JSON.
/// Spans dropped past the profiler's timeline cap are reported under
/// `otherData.droppedSpans` rather than silently omitted.
pub fn chrome_trace(report: &ProfReport) -> String {
    let mut events = vec![Value::Object(vec![
        ("name".into(), Value::Str("process_name".into())),
        ("ph".into(), Value::Str("M".into())),
        ("pid".into(), Value::UInt(1)),
        ("tid".into(), Value::UInt(1)),
        (
            "args".into(),
            Value::Object(vec![("name".into(), Value::Str("emba".into()))]),
        ),
    ])];
    for span in &report.spans {
        let name = span.path.rsplit('/').next().unwrap_or("(root)").to_string();
        events.push(Value::Object(vec![
            ("name".into(), Value::Str(name)),
            ("cat".into(), Value::Str(span.path.clone())),
            ("ph".into(), Value::Str("X".into())),
            ("ts".into(), Value::Float(span.start_ns as f64 / 1e3)),
            ("dur".into(), Value::Float(span.dur_ns as f64 / 1e3)),
            ("pid".into(), Value::UInt(1)),
            ("tid".into(), Value::UInt(1)),
        ]));
    }
    let doc = Value::Object(vec![
        ("traceEvents".into(), Value::Array(events)),
        ("displayTimeUnit".into(), Value::Str("ms".into())),
        (
            "otherData".into(),
            Value::Object(vec![(
                "droppedSpans".into(),
                Value::UInt(report.dropped_spans),
            )]),
        ),
    ]);
    serde_json::to_string(&doc).expect("value serialization is infallible")
}

/// One generic span for [`chrome_trace_spans`] — the serve crate renders
/// its request-scoped flush timelines through this, so a serving trace
/// opens in the same `chrome://tracing` view as the op-level profile.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSpan {
    /// Event name shown on the track (e.g. the span kind).
    pub name: String,
    /// Category string (e.g. `flush-3`); chrome://tracing can filter on it.
    pub cat: String,
    /// Start timestamp, nanoseconds.
    pub start_ns: u64,
    /// Duration, nanoseconds (instantaneous events render as 0-width).
    pub dur_ns: u64,
    /// Thread-track id; the serve exporter uses the request's trace id so
    /// each request gets its own row.
    pub tid: u64,
}

/// Renders arbitrary spans as `chrome://tracing` trace-event JSON, one
/// `ph: "X"` complete event per span under a single named process — the
/// same document shape as [`chrome_trace`], but fed from caller-provided
/// spans instead of the tape profiler's phase timeline.
pub fn chrome_trace_spans(spans: &[TraceSpan], process_name: &str, dropped: u64) -> String {
    let mut events = vec![Value::Object(vec![
        ("name".into(), Value::Str("process_name".into())),
        ("ph".into(), Value::Str("M".into())),
        ("pid".into(), Value::UInt(1)),
        ("tid".into(), Value::UInt(0)),
        (
            "args".into(),
            Value::Object(vec![("name".into(), Value::Str(process_name.to_string()))]),
        ),
    ])];
    for span in spans {
        events.push(Value::Object(vec![
            ("name".into(), Value::Str(span.name.clone())),
            ("cat".into(), Value::Str(span.cat.clone())),
            ("ph".into(), Value::Str("X".into())),
            ("ts".into(), Value::Float(span.start_ns as f64 / 1e3)),
            ("dur".into(), Value::Float(span.dur_ns as f64 / 1e3)),
            ("pid".into(), Value::UInt(1)),
            ("tid".into(), Value::UInt(span.tid)),
        ]));
    }
    let doc = Value::Object(vec![
        ("traceEvents".into(), Value::Array(events)),
        ("displayTimeUnit".into(), Value::Str("ms".into())),
        (
            "otherData".into(),
            Value::Object(vec![("droppedSpans".into(), Value::UInt(dropped))]),
        ),
    ]);
    serde_json::to_string(&doc).expect("value serialization is infallible")
}

/// Renders the per-op aggregates as flamegraph "folded stacks" text. Each
/// line is `seg;seg;...;op value` with the value in nanoseconds of self
/// time; backward passes render as `op (bwd)`. Phase time not attributable
/// to tape ops (optimizer math, tokenization, shuffling) appears as an
/// explicit `(other)` leaf so the flamegraph totals match the phase timers.
pub fn folded_stacks(report: &ProfReport) -> String {
    let mut lines: Vec<String> = Vec::new();
    // Self-op time per path, for the residual computation below.
    let mut op_ns_by_path: HashMap<&str, u64> = HashMap::new();
    for o in &report.ops {
        *op_ns_by_path.entry(o.path.as_str()).or_insert(0) += o.self_ns;
        if o.self_ns == 0 {
            continue;
        }
        let leaf = if o.backward { format!("{} (bwd)", o.op) } else { o.op.to_string() };
        let stack = if o.path.is_empty() {
            leaf
        } else {
            format!("{};{leaf}", o.path.replace('/', ";"))
        };
        lines.push(format!("{stack} {}", o.self_ns));
    }
    // Residual per phase: wall time minus direct child phases minus own ops.
    let mut child_ns: HashMap<&str, u64> = HashMap::new();
    for p in &report.phases {
        if let Some((parent, _)) = p.path.rsplit_once('/') {
            *child_ns.entry(parent).or_insert(0) += p.total_ns;
        }
    }
    for p in &report.phases {
        let attributed = child_ns.get(p.path.as_str()).copied().unwrap_or(0)
            + op_ns_by_path.get(p.path.as_str()).copied().unwrap_or(0);
        let residual = p.total_ns.saturating_sub(attributed);
        if residual > 0 {
            lines.push(format!("{};(other) {residual}", p.path.replace('/', ";")));
        }
    }
    lines.sort();
    let mut out = lines.join("\n");
    if !out.is_empty() {
        out.push('\n');
    }
    out
}

/// Writes the Chrome trace and folded-stacks files under
/// `<out_dir>/profiles/`, returning `(trace_path, folded_path)`.
pub fn write_profile_artifacts(
    out_dir: &Path,
    name: &str,
    report: &ProfReport,
) -> io::Result<(PathBuf, PathBuf)> {
    let dir = out_dir.join("profiles");
    fs::create_dir_all(&dir)?;
    let trace_path = dir.join(format!("{name}.trace.json"));
    fs::write(&trace_path, chrome_trace(report))?;
    let folded_path = dir.join(format!("{name}.folded"));
    fs::write(&folded_path, folded_stacks(report))?;
    Ok((trace_path, folded_path))
}

#[cfg(test)]
mod tests {
    use super::*;
    use emba_tensor::prof::{OpStat, PhaseStat, SpanStat};

    fn sample_report() -> ProfReport {
        ProfReport {
            ops: vec![
                OpStat {
                    path: "train/forward".into(),
                    op: "matmul",
                    backward: false,
                    calls: 4,
                    self_ns: 4_000,
                    bytes: 1_024,
                    flops: 80_000,
                },
                OpStat {
                    path: "train/forward".into(),
                    op: "softmax_rows",
                    backward: false,
                    calls: 2,
                    self_ns: 500,
                    bytes: 128,
                    flops: 700,
                },
                OpStat {
                    path: "train/backward".into(),
                    op: "matmul",
                    backward: true,
                    calls: 4,
                    self_ns: 9_000,
                    bytes: 2_048,
                    flops: 160_000,
                },
            ],
            phases: vec![
                PhaseStat { path: "train".into(), calls: 1, total_ns: 20_000 },
                PhaseStat { path: "train/backward".into(), calls: 1, total_ns: 9_500 },
                PhaseStat { path: "train/forward".into(), calls: 1, total_ns: 5_000 },
            ],
            spans: vec![
                SpanStat { path: "train/forward".into(), start_ns: 100, dur_ns: 5_000 },
                SpanStat { path: "train/backward".into(), start_ns: 5_200, dur_ns: 9_500 },
                SpanStat { path: "train".into(), start_ns: 0, dur_ns: 20_000 },
            ],
            dropped_spans: 2,
        }
    }

    #[test]
    fn op_table_aggregates_and_sorts_by_self_time() {
        let rows = op_table(&sample_report());
        assert_eq!(rows[0].op, "matmul");
        assert!(rows[0].backward);
        assert_eq!(rows[0].self_ns, 9_000);
        assert_eq!(rows[1].op, "matmul");
        assert!(!rows[1].backward);
        assert_eq!(rows.len(), 3);
    }

    #[test]
    fn chrome_trace_parses_and_counts_spans() {
        let text = chrome_trace(&sample_report());
        let v: Value = serde_json::from_str(&text).unwrap();
        let events = v.get("traceEvents").and_then(Value::as_array).unwrap();
        // Metadata event + three spans.
        assert_eq!(events.len(), 4);
        let first_span = &events[1];
        assert_eq!(first_span.get("ph").and_then(Value::as_str), Some("X"));
        assert_eq!(first_span.get("name").and_then(Value::as_str), Some("forward"));
        assert_eq!(first_span.get("dur").and_then(Value::as_f64), Some(5.0));
        let dropped = v
            .get("otherData")
            .and_then(|o| o.get("droppedSpans"))
            .and_then(Value::as_u64);
        assert_eq!(dropped, Some(2));
    }

    #[test]
    fn chrome_trace_spans_render_one_track_per_tid() {
        let spans = vec![
            TraceSpan {
                name: "QueueWait".into(),
                cat: "flush-1".into(),
                start_ns: 1_000,
                dur_ns: 4_000,
                tid: 7,
            },
            TraceSpan {
                name: "Score".into(),
                cat: "flush-1".into(),
                start_ns: 5_000,
                dur_ns: 2_000,
                tid: 8,
            },
        ];
        let text = chrome_trace_spans(&spans, "emba-serve", 3);
        let v: Value = serde_json::from_str(&text).unwrap();
        let events = v.get("traceEvents").and_then(Value::as_array).unwrap();
        assert_eq!(events.len(), 3); // metadata + two spans
        let meta = &events[0];
        let proc_name = meta.get("args").and_then(|a| a.get("name")).and_then(Value::as_str);
        assert_eq!(proc_name, Some("emba-serve"));
        assert_eq!(events[1].get("tid").and_then(Value::as_u64), Some(7));
        assert_eq!(events[1].get("ts").and_then(Value::as_f64), Some(1.0));
        assert_eq!(events[2].get("name").and_then(Value::as_str), Some("Score"));
        assert_eq!(events[2].get("dur").and_then(Value::as_f64), Some(2.0));
        let dropped =
            v.get("otherData").and_then(|o| o.get("droppedSpans")).and_then(Value::as_u64);
        assert_eq!(dropped, Some(3));
    }

    #[test]
    fn folded_stacks_include_ops_and_residuals() {
        let text = folded_stacks(&sample_report());
        assert!(text.contains("train;forward;matmul 4000\n"), "got:\n{text}");
        assert!(text.contains("train;backward;matmul (bwd) 9000\n"));
        // train residual: 20000 − (9500 + 5000 child phases) = 5500.
        assert!(text.contains("train;(other) 5500\n"));
        // backward residual: 9500 − 9000 = 500.
        assert!(text.contains("train;backward;(other) 500\n"));
        for line in text.lines() {
            let (_, value) = line.rsplit_once(' ').expect("folded line has a value");
            value.parse::<u64>().expect("folded value is an integer");
        }
    }

    #[test]
    fn phase_rows_keep_sorted_order() {
        let rows = phase_rows(&sample_report());
        let paths: Vec<&str> = rows.iter().map(|r| r.path.as_str()).collect();
        assert_eq!(paths, ["train", "train/backward", "train/forward"]);
    }
}
