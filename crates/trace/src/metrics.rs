//! Named counters, gauges, and log-spaced histograms for the inference path.
//!
//! The registry is thread-local, like the tensor crate's scratch pool and
//! profiler: one training or serving run owns its thread, so there is no
//! cross-thread aggregation to synchronize and concurrent test runs cannot
//! see each other's samples. Recording is cheap (a `HashMap` upsert keyed by
//! `&'static str`), so the inference hot path can observe every example.
//!
//! Histograms use fixed log-spaced buckets: bucket `i` covers
//! `[bound[i-1], bound[i])`, the first bucket starts at zero, and one
//! overflow bucket catches everything at or above the last boundary. With
//! boundaries fixed up front, recording is O(log buckets) and the p50/p90/
//! p99 summaries are monotone by construction (a percentile is the upper
//! edge of the bucket holding its rank, and edges strictly increase).

use std::cell::RefCell;
use std::collections::HashMap;

use serde::{Deserialize, Serialize};

/// A fixed-bucket histogram over non-negative samples.
#[derive(Debug, Clone)]
pub struct Histogram {
    /// Strictly increasing upper bucket edges. Bucket `i < bounds.len()`
    /// covers `[bounds[i-1], bounds[i])` (with an implicit lower edge of 0
    /// for bucket 0); the final counts slot is the `[last, +∞)` overflow.
    bounds: Vec<f64>,
    counts: Vec<u64>,
    total: u64,
    sum: f64,
}

impl Histogram {
    /// Log-spaced buckets: edges `first·ratio^i` for `i in 0..buckets`.
    ///
    /// # Panics
    ///
    /// Panics if `first ≤ 0`, `ratio ≤ 1`, or `buckets == 0` — the edges
    /// would not be strictly increasing and positive.
    pub fn log_spaced(first: f64, ratio: f64, buckets: usize) -> Self {
        assert!(first > 0.0, "first edge must be positive, got {first}");
        assert!(ratio > 1.0, "ratio must exceed 1, got {ratio}");
        assert!(buckets > 0, "need at least one bucket");
        let bounds: Vec<f64> = (0..buckets).map(|i| first * ratio.powi(i as i32)).collect();
        let counts = vec![0; buckets + 1];
        Self { bounds, counts, total: 0, sum: 0.0 }
    }

    /// Default latency histogram: 1 µs to ~36 min in ×2 steps (32 buckets
    /// plus overflow), in nanoseconds.
    pub fn latency_ns() -> Self {
        Self::log_spaced(1_000.0, 2.0, 32)
    }

    /// The strictly increasing upper bucket edges.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts; the final entry is the `+∞` overflow bucket.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Index of the single bucket `value` lands in (the overflow bucket is
    /// index `bounds.len()`). Negative values clamp into bucket 0.
    pub fn bucket_index(&self, value: f64) -> usize {
        self.bounds.partition_point(|&edge| edge <= value)
    }

    /// Records one sample.
    pub fn record(&mut self, value: f64) {
        let i = self.bucket_index(value);
        self.counts[i] += 1;
        self.total += 1;
        self.sum += value.max(0.0);
    }

    /// Total samples recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Samples that landed in the overflow bucket.
    pub fn overflow(&self) -> u64 {
        *self.counts.last().unwrap()
    }

    /// The `q`-quantile (`0 < q ≤ 1`) as the upper edge of the bucket
    /// containing that rank — always finite (the overflow bucket reports one
    /// ratio step past the last edge) and monotone in `q`. Returns 0 when
    /// empty.
    pub fn percentile(&self, q: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return self.edge_value(i);
            }
        }
        self.edge_value(self.counts.len() - 1)
    }

    /// Mean of the raw samples (exact, not bucketed).
    pub fn mean(&self) -> f64 {
        if self.total == 0 { 0.0 } else { self.sum / self.total as f64 }
    }

    /// Finite representative value for bucket `i`: its upper edge, or one
    /// ratio step past the last edge for the overflow bucket.
    fn edge_value(&self, i: usize) -> f64 {
        if i < self.bounds.len() {
            return self.bounds[i];
        }
        let last = *self.bounds.last().unwrap();
        let ratio = if self.bounds.len() >= 2 {
            last / self.bounds[self.bounds.len() - 2]
        } else {
            2.0
        };
        last * ratio
    }

    /// Summarizes into the serializable form used by run artifacts. The
    /// summary carries the raw bucket edges and counts alongside the
    /// precomputed percentiles, so external scrapers (the `/metrics`
    /// exposition, re-aggregation across shards) can rebuild any quantile
    /// instead of trusting ours.
    pub fn summary(&self, name: &str) -> HistogramSummary {
        HistogramSummary {
            name: name.to_string(),
            count: self.total,
            p50: self.percentile(0.50),
            p90: self.percentile(0.90),
            p99: self.percentile(0.99),
            mean: self.mean(),
            overflow: self.overflow(),
            bounds: self.bounds.clone(),
            bucket_counts: self.counts.clone(),
            sum: self.sum,
        }
    }
}

/// Serializable percentile summary of one histogram.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HistogramSummary {
    /// Metric name (e.g. `eval.example_ns`).
    pub name: String,
    /// Samples recorded.
    pub count: u64,
    /// Median (upper edge of the median's bucket).
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Exact sample mean.
    pub mean: f64,
    /// Samples beyond the last bucket edge.
    pub overflow: u64,
    /// Strictly increasing upper bucket edges ([`Histogram::bounds`]).
    /// Empty in summaries written before the bucket export existed.
    #[serde(default)]
    pub bounds: Vec<f64>,
    /// Per-bucket counts, one per edge plus a final `[last, +∞)` overflow
    /// slot (`bucket_counts.len() == bounds.len() + 1` when present).
    /// Empty in summaries written before the bucket export existed.
    #[serde(default)]
    pub bucket_counts: Vec<u64>,
    /// Exact sum of all samples (what Prometheus calls `_sum`). Zero in
    /// summaries written before the bucket export existed.
    #[serde(default)]
    pub sum: f64,
}

#[derive(Default)]
struct Registry {
    counters: HashMap<&'static str, u64>,
    gauges: HashMap<&'static str, f64>,
    histograms: HashMap<&'static str, Histogram>,
}

thread_local! {
    static REGISTRY: RefCell<Registry> = RefCell::new(Registry::default());
}

/// Adds `delta` to the named counter (created at zero on first use).
pub fn counter_add(name: &'static str, delta: u64) {
    REGISTRY.with(|r| *r.borrow_mut().counters.entry(name).or_insert(0) += delta);
}

/// Sets the named gauge to `value`.
pub fn gauge_set(name: &'static str, value: f64) {
    REGISTRY.with(|r| {
        r.borrow_mut().gauges.insert(name, value);
    });
}

/// Records one latency sample, in nanoseconds, into the named histogram
/// (created with [`Histogram::latency_ns`] buckets on first use).
pub fn observe_ns(name: &'static str, ns: u64) {
    REGISTRY.with(|r| {
        r.borrow_mut()
            .histograms
            .entry(name)
            .or_insert_with(Histogram::latency_ns)
            .record(ns as f64);
    });
}

/// Clears every metric on this thread.
pub fn reset() {
    REGISTRY.with(|r| *r.borrow_mut() = Registry::default());
}

/// Point-in-time view of the registry, every section sorted by name so two
/// snapshots of identical runs serialize identically.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// `(name, value)` counters, sorted by name.
    pub counters: Vec<CounterValue>,
    /// `(name, value)` gauges, sorted by name.
    pub gauges: Vec<GaugeValue>,
    /// Histogram summaries, sorted by name.
    pub histograms: Vec<HistogramSummary>,
}

/// One named counter reading.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CounterValue {
    /// Metric name.
    pub name: String,
    /// Current count.
    pub value: u64,
}

/// One named gauge reading.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GaugeValue {
    /// Metric name.
    pub name: String,
    /// Current value.
    pub value: f64,
}

/// Snapshots every metric on this thread (without clearing; see [`reset`]).
pub fn snapshot() -> MetricsSnapshot {
    REGISTRY.with(|r| {
        let r = r.borrow();
        let mut counters: Vec<CounterValue> = r
            .counters
            .iter()
            .map(|(&name, &value)| CounterValue { name: name.to_string(), value })
            .collect();
        counters.sort_by(|a, b| a.name.cmp(&b.name));
        let mut gauges: Vec<GaugeValue> = r
            .gauges
            .iter()
            .map(|(&name, &value)| GaugeValue { name: name.to_string(), value })
            .collect();
        gauges.sort_by(|a, b| a.name.cmp(&b.name));
        let mut histograms: Vec<HistogramSummary> =
            r.histograms.iter().map(|(&name, h)| h.summary(name)).collect();
        histograms.sort_by(|a, b| a.name.cmp(&b.name));
        MetricsSnapshot { counters, gauges, histograms }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_spaced_edges_strictly_increase() {
        let h = Histogram::latency_ns();
        for w in h.bounds().windows(2) {
            assert!(w[0] < w[1], "edges {w:?} not strictly increasing");
        }
        assert!(h.bounds().iter().all(|b| b.is_finite() && *b > 0.0));
    }

    #[test]
    fn zero_and_overflow_samples_each_land_in_one_bucket() {
        let mut h = Histogram::log_spaced(10.0, 10.0, 3); // edges 10, 100, 1000
        h.record(0.0);
        assert_eq!(h.counts()[0], 1);
        h.record(1e12); // far past the last edge
        assert_eq!(h.overflow(), 1);
        h.record(10.0); // exactly on an edge: belongs to the bucket above
        assert_eq!(h.bucket_index(10.0), 1);
        assert_eq!(h.total(), 3);
        assert_eq!(h.counts().iter().sum::<u64>(), 3);
    }

    #[test]
    fn percentiles_are_finite_ordered_and_bucket_valued() {
        let mut h = Histogram::latency_ns();
        for i in 0..1000u64 {
            h.record((i * 10_000) as f64); // 0 .. 10ms spread
        }
        let (p50, p90, p99) = (h.percentile(0.5), h.percentile(0.9), h.percentile(0.99));
        assert!(p50.is_finite() && p90.is_finite() && p99.is_finite());
        assert!(p50 <= p90 && p90 <= p99, "p50 {p50} p90 {p90} p99 {p99}");
        assert!(h.bounds().contains(&p50));
    }

    #[test]
    fn overflow_heavy_histogram_keeps_percentiles_finite() {
        let mut h = Histogram::log_spaced(10.0, 2.0, 2); // edges 10, 20
        for _ in 0..100 {
            h.record(1e9);
        }
        let p99 = h.percentile(0.99);
        assert!(p99.is_finite());
        assert_eq!(p99, 40.0); // one ratio step past the last edge
    }

    #[test]
    fn empty_histogram_summarizes_to_zero() {
        let h = Histogram::latency_ns();
        let s = h.summary("empty");
        assert_eq!(s.count, 0);
        assert_eq!(s.p50, 0.0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn summary_exports_bucket_bounds_and_counts() {
        let mut h = Histogram::log_spaced(10.0, 10.0, 3); // edges 10, 100, 1000
        for v in [0.0, 5.0, 50.0, 500.0, 5000.0] {
            h.record(v);
        }
        let s = h.summary("export");
        assert_eq!(s.bounds, vec![10.0, 100.0, 1000.0]);
        assert_eq!(s.bucket_counts, vec![2, 1, 1, 1]);
        assert_eq!(s.bucket_counts.len(), s.bounds.len() + 1);
        assert_eq!(s.bucket_counts.iter().sum::<u64>(), s.count);
        assert_eq!(s.sum, 5555.0);
    }

    #[test]
    fn summaries_without_buckets_still_parse() {
        use serde::Value;
        // A summary written before the bucket export carried only the
        // percentiles; the serde defaults keep it readable.
        let s = Histogram::latency_ns().summary("old");
        let v = match s.to_value() {
            Value::Object(fields) => Value::Object(
                fields
                    .into_iter()
                    .filter(|(k, _)| k != "bounds" && k != "bucket_counts" && k != "sum")
                    .collect(),
            ),
            other => panic!("summary serialized to a non-object: {other:?}"),
        };
        let back = HistogramSummary::from_value(&v).unwrap();
        assert!(back.bounds.is_empty());
        assert!(back.bucket_counts.is_empty());
        assert_eq!(back.sum, 0.0);
        assert_eq!(back.name, "old");
    }

    #[test]
    fn registry_snapshot_is_sorted_and_resettable() {
        reset();
        counter_add("b.count", 2);
        counter_add("a.count", 1);
        counter_add("a.count", 1);
        gauge_set("z.rate", 0.5);
        gauge_set("m.rate", 0.25);
        observe_ns("lat.b", 5_000);
        observe_ns("lat.a", 1_000_000);
        let s = snapshot();
        assert_eq!(
            s.counters.iter().map(|c| c.name.as_str()).collect::<Vec<_>>(),
            ["a.count", "b.count"]
        );
        assert_eq!(s.counters[0].value, 2);
        assert_eq!(
            s.gauges.iter().map(|g| g.name.as_str()).collect::<Vec<_>>(),
            ["m.rate", "z.rate"]
        );
        assert_eq!(
            s.histograms.iter().map(|h| h.name.as_str()).collect::<Vec<_>>(),
            ["lat.a", "lat.b"]
        );
        assert_eq!(s.histograms[0].count, 1);
        reset();
        let s = snapshot();
        assert!(s.counters.is_empty() && s.gauges.is_empty() && s.histograms.is_empty());
    }
}
