//! Prometheus text exposition of a [`MetricsSnapshot`].
//!
//! The serving telemetry endpoint (`emba-serve`'s `/metrics`) speaks the
//! [Prometheus text format]: one `# TYPE` line per metric family followed by
//! its samples. Counters and gauges map one-to-one; histograms render their
//! exported bucket edges ([`HistogramSummary::bounds`] /
//! [`HistogramSummary::bucket_counts`]) as **cumulative** `_bucket{le=...}`
//! samples — each bucket counts every sample at or below its edge, the
//! mandatory `+Inf` bucket equals `_count`, and `_sum` is the exact sample
//! sum — so any scraper can re-aggregate quantiles instead of trusting the
//! precomputed p50/p90/p99.
//!
//! Metric names here use `.` separators (`serve.request_ns`), which the
//! format forbids; [`sanitize_metric_name`] maps every name onto the legal
//! `[a-zA-Z_:][a-zA-Z0-9_:]*` alphabet deterministically.
//!
//! [`parse_exposition`] is the matching reader: enough of the format to
//! round-trip what [`prometheus_text`] writes, used by the exposition tests
//! and the telemetry bench harness to validate a live scrape.
//! [`validate_exposition`] layers the histogram invariants (monotone
//! cumulative buckets, strictly increasing edges, `+Inf == _count`) on top.
//!
//! [Prometheus text format]:
//! https://prometheus.io/docs/instrumenting/exposition_formats/

use crate::metrics::{HistogramSummary, MetricsSnapshot};

/// Maps a metric name onto the Prometheus alphabet
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`): every illegal character becomes `_`, and a
/// leading digit gets a `_` prefix. Deterministic, so two snapshots of the
/// same registry always expose the same family names.
pub fn sanitize_metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        let legal = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
            out.push(c);
        } else if legal {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Formats a sample value the way Prometheus expects: finite floats in
/// shortest form, non-finite as `NaN` / `+Inf` / `-Inf`.
fn fmt_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        if v > 0.0 { "+Inf".to_string() } else { "-Inf".to_string() }
    } else {
        format!("{v}")
    }
}

/// Renders one histogram family: cumulative `_bucket` samples (when the
/// summary carries exported buckets), then `_sum` and `_count`. Summaries
/// written before the bucket export (empty `bounds`) degrade to `_sum` +
/// `_count` only — still a valid exposition, just quantile-free.
fn render_histogram(out: &mut String, name: &str, h: &HistogramSummary) {
    out.push_str(&format!("# TYPE {name} histogram\n"));
    if h.bucket_counts.len() == h.bounds.len() + 1 {
        let mut cumulative: u64 = 0;
        for (edge, &count) in h.bounds.iter().zip(&h.bucket_counts) {
            cumulative += count;
            out.push_str(&format!(
                "{name}_bucket{{le=\"{}\"}} {cumulative}\n",
                fmt_value(*edge)
            ));
        }
        cumulative += h.bucket_counts.last().copied().unwrap_or(0);
        out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {cumulative}\n"));
    }
    // Older summaries carry no exact sum; mean × count is the best estimate
    // available and keeps `_sum` consistent with `_count`.
    let sum = if h.sum != 0.0 || h.count == 0 { h.sum } else { h.mean * h.count as f64 };
    out.push_str(&format!("{name}_sum {}\n", fmt_value(sum)));
    out.push_str(&format!("{name}_count {}\n", h.count));
}

/// Renders a full registry snapshot as Prometheus text exposition:
/// counters, gauges, then histograms, each family preceded by its `# TYPE`
/// line. Families keep the snapshot's name-sorted order, so two scrapes of
/// identical registries are byte-identical.
pub fn prometheus_text(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for c in &snap.counters {
        let name = sanitize_metric_name(&c.name);
        out.push_str(&format!("# TYPE {name} counter\n{name} {}\n", c.value));
    }
    for g in &snap.gauges {
        let name = sanitize_metric_name(&g.name);
        out.push_str(&format!("# TYPE {name} gauge\n{name} {}\n", fmt_value(g.value)));
    }
    for h in &snap.histograms {
        render_histogram(&mut out, &sanitize_metric_name(&h.name), h);
    }
    out
}

/// What kind of metric a parsed family declared itself as.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PromKind {
    /// Monotone counter.
    Counter,
    /// Point-in-time gauge.
    Gauge,
    /// Cumulative-bucket histogram.
    Histogram,
}

/// One parsed sample line: `name{labels} value`.
#[derive(Debug, Clone)]
pub struct PromSample {
    /// Sample name, including any `_bucket` / `_sum` / `_count` suffix.
    pub name: String,
    /// `(label, value)` pairs in appearance order.
    pub labels: Vec<(String, String)>,
    /// Sample value.
    pub value: f64,
}

/// One parsed metric family: the `# TYPE` declaration plus every sample
/// that followed it (until the next declaration).
#[derive(Debug, Clone)]
pub struct PromFamily {
    /// Sanitized family name from the `# TYPE` line.
    pub name: String,
    /// Declared kind.
    pub kind: PromKind,
    /// Samples in file order.
    pub samples: Vec<PromSample>,
}

impl PromFamily {
    /// The value of the sample named exactly `<family>_<suffix>` (or the
    /// bare family name when `suffix` is empty).
    pub fn sample_value(&self, suffix: &str) -> Option<f64> {
        let want = if suffix.is_empty() {
            self.name.clone()
        } else {
            format!("{}_{suffix}", self.name)
        };
        self.samples.iter().find(|s| s.name == want).map(|s| s.value)
    }
}

fn parse_value(text: &str) -> Result<f64, String> {
    match text {
        "+Inf" => Ok(f64::INFINITY),
        "-Inf" => Ok(f64::NEG_INFINITY),
        "NaN" => Ok(f64::NAN),
        other => other.parse::<f64>().map_err(|e| format!("bad sample value {other:?}: {e}")),
    }
}

fn parse_labels(text: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    for part in text.split(',').filter(|p| !p.is_empty()) {
        let (k, v) = part
            .split_once('=')
            .ok_or_else(|| format!("label {part:?} missing '='"))?;
        let v = v
            .strip_prefix('"')
            .and_then(|v| v.strip_suffix('"'))
            .ok_or_else(|| format!("label value in {part:?} not quoted"))?;
        labels.push((k.to_string(), v.to_string()));
    }
    Ok(labels)
}

/// Parses Prometheus text exposition into its metric families. Strict
/// enough to catch a malformed render — every sample must follow a `# TYPE`
/// declaration whose family name prefixes it — while accepting any sample
/// ordering the writer produces.
pub fn parse_exposition(text: &str) -> Result<Vec<PromFamily>, String> {
    let mut families: Vec<PromFamily> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let n = lineno + 1;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let rest = rest.trim_start();
            let Some(decl) = rest.strip_prefix("TYPE ") else {
                continue; // HELP or free-form comment
            };
            let mut parts = decl.split_whitespace();
            let name = parts.next().ok_or_else(|| format!("line {n}: TYPE without a name"))?;
            let kind = match parts.next() {
                Some("counter") => PromKind::Counter,
                Some("gauge") => PromKind::Gauge,
                Some("histogram") => PromKind::Histogram,
                other => return Err(format!("line {n}: unsupported TYPE {other:?}")),
            };
            families.push(PromFamily { name: name.to_string(), kind, samples: Vec::new() });
            continue;
        }
        let family = families
            .last_mut()
            .ok_or_else(|| format!("line {n}: sample before any # TYPE declaration"))?;
        let (name_labels, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {n}: sample line without a value"))?;
        let (name, labels) = match name_labels.split_once('{') {
            Some((name, rest)) => {
                let inner = rest
                    .strip_suffix('}')
                    .ok_or_else(|| format!("line {n}: unterminated label set"))?;
                (name, parse_labels(inner).map_err(|e| format!("line {n}: {e}"))?)
            }
            None => (name_labels, Vec::new()),
        };
        if !name.starts_with(&family.name) {
            return Err(format!(
                "line {n}: sample {name:?} does not belong to family {:?}",
                family.name
            ));
        }
        family.samples.push(PromSample {
            name: name.to_string(),
            labels,
            value: parse_value(value).map_err(|e| format!("line {n}: {e}"))?,
        });
    }
    Ok(families)
}

/// Parses the exposition and checks the histogram invariants a scraper
/// relies on: `le` edges strictly increase and end at `+Inf`, cumulative
/// bucket values never decrease, and the `+Inf` bucket equals `_count`.
/// Returns the parsed families on success.
pub fn validate_exposition(text: &str) -> Result<Vec<PromFamily>, String> {
    let families = parse_exposition(text)?;
    for f in &families {
        if f.kind != PromKind::Histogram {
            continue;
        }
        let bucket_name = format!("{}_bucket", f.name);
        let buckets: Vec<&PromSample> =
            f.samples.iter().filter(|s| s.name == bucket_name).collect();
        let mut prev_le = f64::NEG_INFINITY;
        let mut prev_cum = 0.0f64;
        for b in &buckets {
            let le = b
                .labels
                .iter()
                .find(|(k, _)| k == "le")
                .ok_or_else(|| format!("{}: bucket without le label", f.name))?;
            let le = parse_value(&le.1).map_err(|e| format!("{}: {e}", f.name))?;
            if le <= prev_le {
                return Err(format!("{}: le edges not strictly increasing at {le}", f.name));
            }
            if b.value < prev_cum {
                return Err(format!(
                    "{}: cumulative bucket decreased ({} after {prev_cum})",
                    f.name, b.value
                ));
            }
            prev_le = le;
            prev_cum = b.value;
        }
        let count = f
            .sample_value("count")
            .ok_or_else(|| format!("{}: histogram without _count", f.name))?;
        if let Some(last) = buckets.last() {
            if prev_le != f64::INFINITY {
                return Err(format!("{}: last bucket le is {prev_le}, not +Inf", f.name));
            }
            if last.value != count {
                return Err(format!(
                    "{}: +Inf bucket {} != _count {count}",
                    f.name, last.value
                ));
            }
        }
        if f.sample_value("sum").is_none() {
            return Err(format!("{}: histogram without _sum", f.name));
        }
    }
    Ok(families)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{CounterValue, GaugeValue, Histogram};

    fn fixed_snapshot() -> MetricsSnapshot {
        let mut lat = Histogram::log_spaced(1_000.0, 10.0, 3); // 1e3, 1e4, 1e5
        for v in [500.0, 2_000.0, 2_500.0, 50_000.0, 1e9] {
            lat.record(v);
        }
        MetricsSnapshot {
            counters: vec![
                CounterValue { name: "serve.enqueued".into(), value: 42 },
                CounterValue { name: "serve.shed.admission".into(), value: 3 },
            ],
            gauges: vec![GaugeValue { name: "serve.queue_depth".into(), value: 7.0 }],
            histograms: vec![lat.summary("serve.request_ns")],
        }
    }

    #[test]
    fn sanitization_maps_onto_the_legal_alphabet() {
        assert_eq!(sanitize_metric_name("serve.request_ns"), "serve_request_ns");
        assert_eq!(sanitize_metric_name("catalog.cache.hit_rate"), "catalog_cache_hit_rate");
        assert_eq!(sanitize_metric_name("9lives"), "_9lives");
        assert_eq!(sanitize_metric_name("a-b c/d"), "a_b_c_d");
        assert_eq!(sanitize_metric_name("ok_name:sub"), "ok_name:sub");
        assert_eq!(sanitize_metric_name(""), "_");
        for name in ["serve.request_ns", "9lives", "a-b c/d", "µ∆"] {
            let s = sanitize_metric_name(name);
            let mut chars = s.chars();
            let first = chars.next().unwrap();
            assert!(first.is_ascii_alphabetic() || first == '_' || first == ':');
            assert!(chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'));
        }
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_monotone() {
        let text = prometheus_text(&fixed_snapshot());
        let families = validate_exposition(&text).expect("exposition validates");
        let h = families
            .iter()
            .find(|f| f.name == "serve_request_ns")
            .expect("histogram family present");
        let buckets: Vec<f64> = h
            .samples
            .iter()
            .filter(|s| s.name == "serve_request_ns_bucket")
            .map(|s| s.value)
            .collect();
        // Raw per-bucket counts 1,2,1,1 → cumulative 1,3,4,5.
        assert_eq!(buckets, vec![1.0, 3.0, 4.0, 5.0]);
        for w in buckets.windows(2) {
            assert!(w[0] <= w[1], "cumulative buckets decreased: {w:?}");
        }
    }

    #[test]
    fn inf_bucket_equals_count_and_sum_is_exact() {
        let text = prometheus_text(&fixed_snapshot());
        let families = validate_exposition(&text).expect("exposition validates");
        let h = families.iter().find(|f| f.name == "serve_request_ns").unwrap();
        let inf = h
            .samples
            .iter()
            .rfind(|s| s.name == "serve_request_ns_bucket")
            .expect("+Inf bucket present");
        assert_eq!(inf.labels, vec![("le".to_string(), "+Inf".to_string())]);
        assert_eq!(Some(inf.value), h.sample_value("count"));
        assert_eq!(h.sample_value("sum"), Some(500.0 + 2_000.0 + 2_500.0 + 50_000.0 + 1e9));
    }

    #[test]
    fn counters_and_gauges_expose_typed_families() {
        let text = prometheus_text(&fixed_snapshot());
        assert!(text.contains("# TYPE serve_enqueued counter\nserve_enqueued 42\n"));
        assert!(text.contains("# TYPE serve_shed_admission counter\nserve_shed_admission 3\n"));
        assert!(text.contains("# TYPE serve_queue_depth gauge\nserve_queue_depth 7\n"));
    }

    #[test]
    fn golden_exposition_round_trips() {
        let text = prometheus_text(&fixed_snapshot());
        let golden = include_str!("../tests/golden/exposition.prom");
        assert_eq!(text, golden, "rendered exposition drifted from the golden file");
        // Round trip: parse the golden text and re-check every value the
        // renderer wrote into it.
        let families = validate_exposition(golden).expect("golden file validates");
        assert_eq!(families.len(), 4);
        let by_name = |n: &str| families.iter().find(|f| f.name == n).unwrap();
        assert_eq!(by_name("serve_enqueued").kind, PromKind::Counter);
        assert_eq!(by_name("serve_enqueued").sample_value(""), Some(42.0));
        assert_eq!(by_name("serve_queue_depth").kind, PromKind::Gauge);
        assert_eq!(by_name("serve_queue_depth").sample_value(""), Some(7.0));
        let h = by_name("serve_request_ns");
        assert_eq!(h.kind, PromKind::Histogram);
        assert_eq!(h.sample_value("count"), Some(5.0));
        assert_eq!(h.samples.len(), 4 + 2); // 3 edges + +Inf + sum + count
    }

    #[test]
    fn pre_bucket_summaries_degrade_to_sum_and_count() {
        // A summary without exported buckets (old snapshot) must still
        // render a valid family: no _bucket samples, estimated _sum, _count.
        let snap = MetricsSnapshot {
            histograms: vec![HistogramSummary {
                name: "old.metric".into(),
                count: 4,
                p50: 1.0,
                p90: 2.0,
                p99: 2.0,
                mean: 1.5,
                overflow: 0,
                bounds: Vec::new(),
                bucket_counts: Vec::new(),
                sum: 0.0,
            }],
            ..MetricsSnapshot::default()
        };
        let text = prometheus_text(&snap);
        assert!(!text.contains("_bucket"));
        let families = validate_exposition(&text).expect("bucketless histogram validates");
        assert_eq!(families[0].sample_value("count"), Some(4.0));
        assert_eq!(families[0].sample_value("sum"), Some(6.0)); // mean × count
    }

    #[test]
    fn malformed_expositions_are_rejected() {
        assert!(parse_exposition("orphan_sample 1\n").is_err());
        assert!(parse_exposition("# TYPE x counter\nx notanumber\n").is_err());
        assert!(parse_exposition("# TYPE x summary\n").is_err());
        // Decreasing cumulative buckets fail validation.
        let bad = "# TYPE h histogram\n\
                   h_bucket{le=\"1\"} 5\n\
                   h_bucket{le=\"2\"} 3\n\
                   h_bucket{le=\"+Inf\"} 5\n\
                   h_sum 1\nh_count 5\n";
        assert!(validate_exposition(bad).is_err());
        // +Inf bucket disagreeing with _count fails validation.
        let bad = "# TYPE h histogram\n\
                   h_bucket{le=\"1\"} 2\n\
                   h_bucket{le=\"+Inf\"} 4\n\
                   h_sum 1\nh_count 5\n";
        assert!(validate_exposition(bad).is_err());
    }
}
