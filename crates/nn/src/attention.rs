//! Multi-head scaled dot-product self-attention.
//!
//! The batched path packs several variable-length sequences row-wise into one
//! `[ΣT, hidden]` activation matrix ([`emba_tensor::RowGroups`] records the
//! per-sequence row ranges) and runs block-diagonal attention: each sequence
//! attends only to its own rows, so no `[ΣT, ΣT]` mask tensor is ever
//! materialized. The per-example API is the batch-of-one special case.

use emba_tensor::{Graph, RowGroups, Tensor, Var};
use rand::Rng;

use crate::layers::{dropout, Linear};
use crate::param::{GraphStamp, Module, Param};

/// Multi-head self-attention with output projection.
#[derive(Debug)]
pub struct MultiHeadAttention {
    query: Linear,
    key: Linear,
    value: Linear,
    output: Linear,
    heads: usize,
    head_dim: usize,
    dropout_p: f32,
}

impl MultiHeadAttention {
    /// Creates attention over `hidden` dims split across `heads` heads.
    ///
    /// # Panics
    ///
    /// Panics if `hidden` is not divisible by `heads`.
    pub fn new<R: Rng + ?Sized>(hidden: usize, heads: usize, dropout_p: f32, rng: &mut R) -> Self {
        assert!(
            heads > 0 && hidden.is_multiple_of(heads),
            "hidden {hidden} must be divisible by heads {heads}"
        );
        Self {
            query: Linear::new(hidden, hidden, rng),
            key: Linear::new(hidden, hidden, rng),
            value: Linear::new(hidden, hidden, rng),
            output: Linear::new(hidden, hidden, rng),
            heads,
            head_dim: hidden / heads,
            dropout_p,
        }
    }

    /// Number of attention heads.
    pub fn heads(&self) -> usize {
        self.heads
    }

    /// Runs block-diagonal self-attention over a row-packed batch
    /// `x: [ΣT, hidden]` whose sequences are described by `groups`.
    ///
    /// Returns the attended output (same packed layout) and, per head, the
    /// `[ΣT, W]` grouped attention probabilities, where `W = groups.max_len()`
    /// and row `r` of sequence `i` holds its distribution over that
    /// sequence's own keys in columns `0..len_i` (padding columns are zero).
    pub fn forward_batch_with_probs<R: Rng + ?Sized>(
        &self,
        g: &Graph,
        stamp: GraphStamp,
        x: Var,
        groups: &RowGroups,
        train: bool,
        rng: &mut R,
    ) -> (Var, Vec<Var>) {
        let _scope = emba_tensor::prof::scope("attention");
        let q = self.query.forward(g, stamp, x);
        let k = self.key.forward(g, stamp, x);
        let v = self.value.forward(g, stamp, x);
        let scale = 1.0 / (self.head_dim as f32).sqrt();

        let mut contexts = Vec::with_capacity(self.heads);
        let mut probs = Vec::with_capacity(self.heads);
        for h in 0..self.heads {
            let c0 = h * self.head_dim;
            let c1 = c0 + self.head_dim;
            let qh = g.slice_cols(q, c0, c1);
            let kh = g.slice_cols(k, c0, c1);
            let vh = g.slice_cols(v, c0, c1);
            let p = g.attention_scores_grouped(qh, kh, scale, groups);
            let p_dropped = dropout(g, p, self.dropout_p, train, rng);
            contexts.push(g.matmul_grouped(p_dropped, vh, groups));
            probs.push(p);
        }
        let ctx = g.concat_cols(&contexts);
        let out = self.output.forward(g, stamp, ctx);
        let out = dropout(g, out, self.dropout_p, train, rng);
        (out, probs)
    }

    /// Runs self-attention over `x: [seq, hidden]`, returning the attended
    /// output and, per head, the `[seq, seq]` attention probability
    /// variables (used for the paper's Figure 6 visualizations).
    ///
    /// Thin batch-of-one wrapper over
    /// [`MultiHeadAttention::forward_batch_with_probs`].
    pub fn forward_with_probs<R: Rng + ?Sized>(
        &self,
        g: &Graph,
        stamp: GraphStamp,
        x: Var,
        train: bool,
        rng: &mut R,
    ) -> (Var, Vec<Var>) {
        let groups = RowGroups::from_lens(&[g.value(x).rows()]);
        self.forward_batch_with_probs(g, stamp, x, &groups, train, rng)
    }

    /// [`MultiHeadAttention::forward_with_probs`] without retaining the
    /// probability handles.
    pub fn forward<R: Rng + ?Sized>(
        &self,
        g: &Graph,
        stamp: GraphStamp,
        x: Var,
        train: bool,
        rng: &mut R,
    ) -> Var {
        self.forward_with_probs(g, stamp, x, train, rng).0
    }

    /// Sums the per-head attention probabilities of a recorded forward pass
    /// into a single `[seq, seq]` matrix, the form used by the paper's
    /// attention-score visualizations.
    pub fn summed_probs(g: &Graph, probs: &[Var]) -> Tensor {
        assert!(!probs.is_empty(), "no attention probabilities recorded");
        let mut total = g.value(probs[0]);
        for &p in &probs[1..] {
            total.add_scaled_in_place(&g.value(p), 1.0);
        }
        total
    }
}

impl Module for MultiHeadAttention {
    fn visit(&self, f: &mut dyn FnMut(&Param)) {
        self.query.visit(f);
        self.key.visit(f);
        self.value.visit(f);
        self.output.visit(f);
    }
    fn visit_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.query.visit_mut(f);
        self.key.visit_mut(f);
        self.value.visit_mut(f);
        self.output.visit_mut(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn output_shape_matches_input() {
        let mut rng = StdRng::seed_from_u64(0);
        let mha = MultiHeadAttention::new(16, 4, 0.0, &mut rng);
        let g = Graph::new();
        let x = g.leaf(Tensor::rand_normal(5, 16, 0.0, 1.0, &mut rng));
        let (y, probs) = mha.forward_with_probs(&g, GraphStamp::next(), x, false, &mut rng);
        assert_eq!(g.value(y).shape(), (5, 16));
        assert_eq!(probs.len(), 4);
        for p in &probs {
            assert_eq!(g.value(*p).shape(), (5, 5));
        }
    }

    #[test]
    fn attention_rows_are_distributions() {
        let mut rng = StdRng::seed_from_u64(1);
        let mha = MultiHeadAttention::new(8, 2, 0.0, &mut rng);
        let g = Graph::new();
        let x = g.leaf(Tensor::rand_normal(4, 8, 0.0, 1.0, &mut rng));
        let (_, probs) = mha.forward_with_probs(&g, GraphStamp::next(), x, false, &mut rng);
        for p in probs {
            let v = g.value(p);
            for r in 0..v.rows() {
                let s: f32 = v.row_slice(r).iter().sum();
                assert!((s - 1.0).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn summed_probs_rows_sum_to_head_count() {
        let mut rng = StdRng::seed_from_u64(2);
        let mha = MultiHeadAttention::new(8, 2, 0.0, &mut rng);
        let g = Graph::new();
        let x = g.leaf(Tensor::rand_normal(3, 8, 0.0, 1.0, &mut rng));
        let (_, probs) = mha.forward_with_probs(&g, GraphStamp::next(), x, false, &mut rng);
        let summed = MultiHeadAttention::summed_probs(&g, &probs);
        for r in 0..3 {
            let s: f32 = summed.row_slice(r).iter().sum();
            assert!((s - 2.0).abs() < 1e-4);
        }
    }

    #[test]
    fn gradients_reach_all_projections() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut mha = MultiHeadAttention::new(8, 2, 0.0, &mut rng);
        let g = Graph::new();
        let stamp = GraphStamp::next();
        let x = g.leaf(Tensor::rand_normal(3, 8, 0.0, 1.0, &mut rng));
        let y = mha.forward(&g, stamp, x, false, &mut rng);
        let sq = g.mul(y, y);
        let loss = g.mean_all(sq);
        let grads = g.backward(loss);
        mha.accumulate_gradients(&grads);
        let mut all_nonzero = true;
        mha.visit(&mut |p| {
            if p.grad.norm() == 0.0 {
                all_nonzero = false;
            }
        });
        assert!(all_nonzero, "every projection should receive gradient");
    }

    #[test]
    fn batched_matches_per_example() {
        let mut rng = StdRng::seed_from_u64(5);
        let mha = MultiHeadAttention::new(8, 2, 0.0, &mut rng);
        let stamp = GraphStamp::next();
        let a = Tensor::rand_normal(3, 8, 0.0, 1.0, &mut rng);
        let b = Tensor::rand_normal(5, 8, 0.0, 1.0, &mut rng);

        let g = Graph::new();
        let packed = g.leaf(Tensor::concat_rows(&[&a, &b]));
        let groups = RowGroups::from_lens(&[3, 5]);
        let (yp, probs) =
            mha.forward_batch_with_probs(&g, stamp, packed, &groups, false, &mut rng);
        let (ya, _) = mha.forward_with_probs(&g, stamp, g.leaf(a), false, &mut rng);
        let (yb, _) = mha.forward_with_probs(&g, stamp, g.leaf(b), false, &mut rng);

        let vp = g.value(yp);
        let ref_out = Tensor::concat_rows(&[&g.value(ya), &g.value(yb)]);
        assert_eq!(vp.shape(), (8, 8));
        for (x, y) in vp.data().iter().zip(ref_out.data()) {
            assert!((x - y).abs() < 1e-5, "batched {x} vs per-example {y}");
        }
        // Grouped probs are [ΣT, W]: rows of sequence 0 use only 3 columns.
        for p in &probs {
            let v = g.value(*p);
            assert_eq!(v.shape(), (8, 5));
            for r in 0..3 {
                assert_eq!(&v.row_slice(r)[3..], &[0.0, 0.0], "padding must be zero");
            }
        }
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn rejects_indivisible_heads() {
        let mut rng = StdRng::seed_from_u64(4);
        let _ = MultiHeadAttention::new(10, 3, 0.0, &mut rng);
    }
}
