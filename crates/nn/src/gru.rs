//! Gated recurrent units — the RNN substrate for the DeepMatcher baseline.
//!
//! DeepMatcher (Mudgal et al., SIGMOD 2018) aggregates attribute embeddings
//! with bidirectional RNNs; this module provides the [`GruCell`] and
//! [`BiGru`] used by `emba-core`'s DeepMatcher reimplementation.

use emba_tensor::{Graph, Tensor, Var};
use rand::Rng;

use crate::layers::Linear;
use crate::param::{GraphStamp, Module, Param};

/// A single GRU cell with the standard update/reset/candidate gates.
#[derive(Debug)]
pub struct GruCell {
    /// Input projection for all three gates, `[in, 3*hidden]` as one matmul
    /// (update ‖ reset ‖ candidate).
    input: Linear,
    /// Hidden projection for the update and reset gates, `[hidden, 2*hidden]`.
    hidden_zr: Linear,
    /// Hidden projection for the candidate, `[hidden, hidden]` (applied to
    /// the reset-gated state).
    hidden_n: Linear,
    hidden: usize,
}

impl GruCell {
    /// Creates a cell mapping `in_dim` inputs to `hidden` state dims.
    pub fn new<R: Rng + ?Sized>(in_dim: usize, hidden: usize, rng: &mut R) -> Self {
        Self {
            input: Linear::new(in_dim, 3 * hidden, rng),
            hidden_zr: Linear::new(hidden, 2 * hidden, rng),
            hidden_n: Linear::new(hidden, hidden, rng),
            hidden,
        }
    }

    /// Hidden state width.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// One step: consumes `x: [1, in]` and `h: [1, hidden]`, returns the new
    /// `[1, hidden]` state.
    pub fn step(&self, g: &Graph, stamp: GraphStamp, x: Var, h: Var) -> Var {
        let hd = self.hidden;
        let xi = self.input.forward(g, stamp, x); // [1, 3h]
        let hz = self.hidden_zr.forward(g, stamp, h); // [1, 2h]

        let xz = g.slice_cols(xi, 0, hd);
        let xr = g.slice_cols(xi, hd, 2 * hd);
        let xn = g.slice_cols(xi, 2 * hd, 3 * hd);
        let hzz = g.slice_cols(hz, 0, hd);
        let hzr = g.slice_cols(hz, hd, 2 * hd);

        let z = g.sigmoid(g.add(xz, hzz));
        let r = g.sigmoid(g.add(xr, hzr));
        let rh = g.mul(r, h);
        let n = g.tanh(g.add(xn, self.hidden_n.forward(g, stamp, rh)));

        // h' = (1 - z) ⊙ n + z ⊙ h  =  n + z ⊙ (h - n)
        let delta = g.mul(z, g.sub(h, n));
        g.add(n, delta)
    }

    /// Runs the cell across `xs: [seq, in]`, returning `[seq, hidden]` with
    /// one row per timestep. `reverse` scans right-to-left (output rows stay
    /// in input order).
    pub fn scan(&self, g: &Graph, stamp: GraphStamp, xs: Var, reverse: bool) -> Var {
        let seq = g.shape(xs).0;
        assert!(seq > 0, "cannot scan an empty sequence");
        let mut h = g.leaf(Tensor::zeros(1, self.hidden));
        let mut states = vec![h; seq];
        let order: Vec<usize> = if reverse {
            (0..seq).rev().collect()
        } else {
            (0..seq).collect()
        };
        for t in order {
            let x = g.slice_rows(xs, t, t + 1);
            h = self.step(g, stamp, x, h);
            states[t] = h;
        }
        g.concat_rows(&states)
    }
}

impl Module for GruCell {
    fn visit(&self, f: &mut dyn FnMut(&Param)) {
        self.input.visit(f);
        self.hidden_zr.visit(f);
        self.hidden_n.visit(f);
    }
    fn visit_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.input.visit_mut(f);
        self.hidden_zr.visit_mut(f);
        self.hidden_n.visit_mut(f);
    }
}

/// A bidirectional GRU: forward and backward cells with concatenated states.
#[derive(Debug)]
pub struct BiGru {
    forward: GruCell,
    backward: GruCell,
}

impl BiGru {
    /// Creates a BiGRU whose output width is `2 * hidden`.
    pub fn new<R: Rng + ?Sized>(in_dim: usize, hidden: usize, rng: &mut R) -> Self {
        Self {
            forward: GruCell::new(in_dim, hidden, rng),
            backward: GruCell::new(in_dim, hidden, rng),
        }
    }

    /// Output width (`2 * hidden`).
    pub fn out_dim(&self) -> usize {
        2 * self.forward.hidden()
    }

    /// Encodes `xs: [seq, in]` into `[seq, 2*hidden]`.
    pub fn forward(&self, g: &Graph, stamp: GraphStamp, xs: Var) -> Var {
        let fwd = self.forward.scan(g, stamp, xs, false);
        let bwd = self.backward.scan(g, stamp, xs, true);
        g.concat_cols(&[fwd, bwd])
    }
}

impl Module for BiGru {
    fn visit(&self, f: &mut dyn FnMut(&Param)) {
        self.forward.visit(f);
        self.backward.visit(f);
    }
    fn visit_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.forward.visit_mut(f);
        self.backward.visit_mut(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn scan_shapes() {
        let mut rng = StdRng::seed_from_u64(0);
        let cell = GruCell::new(4, 6, &mut rng);
        let g = Graph::new();
        let xs = g.leaf(Tensor::rand_normal(5, 4, 0.0, 1.0, &mut rng));
        let hs = cell.scan(&g, GraphStamp::next(), xs, false);
        assert_eq!(g.value(hs).shape(), (5, 6));
    }

    #[test]
    fn state_stays_bounded() {
        // tanh candidate + convex gate combination keeps |h| <= 1.
        let mut rng = StdRng::seed_from_u64(1);
        let cell = GruCell::new(3, 4, &mut rng);
        let g = Graph::new();
        let xs = g.leaf(Tensor::rand_normal(20, 3, 0.0, 5.0, &mut rng));
        let hs = cell.scan(&g, GraphStamp::next(), xs, false);
        assert!(g.value(hs).data().iter().all(|&v| v.abs() <= 1.0 + 1e-5));
    }

    #[test]
    fn reverse_scan_differs_but_matches_flipped_input() {
        let mut rng = StdRng::seed_from_u64(2);
        let cell = GruCell::new(2, 3, &mut rng);
        let x = Tensor::rand_normal(4, 2, 0.0, 1.0, &mut rng);
        let mut flipped_rows: Vec<&[f32]> = x.iter_rows().collect();
        flipped_rows.reverse();
        let flipped = Tensor::from_rows(&flipped_rows);

        let g = Graph::new();
        let stamp = GraphStamp::next();
        let rev = g.value(cell.scan(&g, stamp, g.leaf(x), true));
        let fwd_on_flipped = g.value(cell.scan(&g, stamp, g.leaf(flipped), false));
        // Reverse scan at row t equals forward scan over the flipped input at
        // row seq-1-t.
        for t in 0..4 {
            assert_eq!(rev.row_slice(t), fwd_on_flipped.row_slice(3 - t));
        }
    }

    #[test]
    fn bigru_output_width_and_gradients() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut net = BiGru::new(3, 5, &mut rng);
        assert_eq!(net.out_dim(), 10);
        let g = Graph::new();
        let stamp = GraphStamp::next();
        let xs = g.leaf(Tensor::rand_normal(4, 3, 0.0, 1.0, &mut rng));
        let hs = net.forward(&g, stamp, xs);
        assert_eq!(g.value(hs).shape(), (4, 10));
        let sq = g.mul(hs, hs);
        let loss = g.mean_all(sq);
        let grads = g.backward(loss);
        net.accumulate_gradients(&grads);
        let mut nonzero = true;
        net.visit(&mut |p| {
            if p.grad.norm() == 0.0 {
                nonzero = false;
            }
        });
        assert!(nonzero);
    }
}
