//! Trainable parameters and the module visitor.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

use emba_tensor::{Gradients, Graph, Tensor, Var};

static NEXT_PARAM_ID: AtomicU64 = AtomicU64::new(0);
static NEXT_GRAPH_STAMP: AtomicU64 = AtomicU64::new(0);

/// A fresh stamp identifying one forward graph, used so a parameter bound
/// twice within the same graph (weight sharing, e.g. a GRU cell applied at
/// every timestep) reuses its leaf [`Var`] instead of creating a duplicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GraphStamp(u64);

impl GraphStamp {
    /// Produces a stamp for a new forward pass.
    pub fn next() -> Self {
        GraphStamp(NEXT_GRAPH_STAMP.fetch_add(1, Ordering::Relaxed))
    }
}

/// A trainable tensor with its accumulated gradient.
///
/// The binding between a parameter and the [`Var`] that represents it inside
/// the current forward graph is tracked internally: call [`Param::bind`]
/// during the forward pass and [`Param::accumulate`] after
/// [`Graph::backward`].
#[derive(Debug)]
pub struct Param {
    id: u64,
    /// Current value.
    pub value: Tensor,
    /// Accumulated gradient (same shape as `value`).
    pub grad: Tensor,
    bound: Cell<Option<(GraphStamp, Var)>>,
}

impl Param {
    /// Wraps a tensor as a trainable parameter with a zeroed gradient.
    pub fn new(value: Tensor) -> Self {
        let grad = Tensor::zeros(value.rows(), value.cols());
        Self {
            id: NEXT_PARAM_ID.fetch_add(1, Ordering::Relaxed),
            value,
            grad,
            bound: Cell::new(None),
        }
    }

    /// Stable identity used by optimizers to key their per-parameter state.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Number of scalar values in this parameter.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// Whether the parameter is empty.
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }

    /// Registers this parameter as a leaf of `g`, reusing the existing leaf
    /// when already bound under the same `stamp` (weight sharing within one
    /// forward pass).
    pub fn bind(&self, g: &Graph, stamp: GraphStamp) -> Var {
        if let Some((s, v)) = self.bound.get() {
            if s == stamp {
                return v;
            }
        }
        let v = g.leaf(self.value.clone());
        self.bound.set(Some((stamp, v)));
        v
    }

    /// Adds the gradient computed for this parameter's bound leaf (if any)
    /// into `self.grad`, then clears the binding.
    pub fn accumulate(&mut self, grads: &Gradients) {
        if let Some((_, v)) = self.bound.take() {
            if let Some(g) = grads.get(v) {
                self.grad.add_scaled_in_place(g, 1.0);
            }
        }
    }

    /// Zeroes the accumulated gradient.
    pub fn zero_grad(&mut self) {
        self.grad = Tensor::zeros(self.value.rows(), self.value.cols());
    }
}

/// Anything holding trainable parameters.
///
/// The visitor pattern sidesteps the borrow gymnastics of returning nested
/// `&mut` collections and gives a deterministic parameter order, which the
/// checkpoint format and the optimizers rely on.
pub trait Module {
    /// Visits every parameter in a fixed, deterministic order.
    fn visit(&self, f: &mut dyn FnMut(&Param));

    /// Mutable variant of [`Module::visit`], in the same order.
    fn visit_mut(&mut self, f: &mut dyn FnMut(&mut Param));

    /// Total number of trainable scalars.
    fn num_params(&self) -> usize {
        let mut n = 0;
        self.visit(&mut |p| n += p.len());
        n
    }

    /// After `Graph::backward`, folds each bound parameter's gradient into
    /// its accumulator.
    fn accumulate_gradients(&mut self, grads: &Gradients) {
        self.visit_mut(&mut |p| p.accumulate(grads));
    }

    /// Zeroes all gradient accumulators.
    fn zero_grads(&mut self) {
        self.visit_mut(&mut |p| p.zero_grad());
    }

    /// Snapshot of all parameter values in visit order.
    fn state(&self) -> Vec<Tensor> {
        let mut out = Vec::new();
        self.visit(&mut |p| out.push(p.value.clone()));
        out
    }

    /// Restores parameter values from a [`Module::state`] snapshot.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot length or any tensor shape disagrees with the
    /// module's parameters.
    fn load_state(&mut self, state: &[Tensor]) {
        let mut i = 0;
        self.visit_mut(&mut |p| {
            assert!(i < state.len(), "state snapshot too short at parameter {i}");
            assert_eq!(
                state[i].shape(),
                p.value.shape(),
                "state snapshot shape mismatch at parameter {i}"
            );
            p.value = state[i].clone();
            i += 1;
        });
        assert_eq!(i, state.len(), "state snapshot has {} extra tensors", state.len() - i);
    }
}

/// Global L2 gradient-norm clipping across all parameters of a module.
///
/// Returns the pre-clip norm.
pub fn clip_grad_norm(module: &mut dyn Module, max_norm: f32) -> f32 {
    let mut sq = 0.0f32;
    module.visit(&mut |p| {
        sq += p.grad.data().iter().map(|&g| g * g).sum::<f32>();
    });
    let norm = sq.sqrt();
    if norm > max_norm && norm > 0.0 {
        let scale = max_norm / norm;
        // In place: gradient accumulators are uniquely owned here, so this
        // reuses their buffers instead of allocating one per parameter per
        // optimizer step.
        module.visit_mut(&mut |p| {
            p.grad.scale_mut(scale);
        });
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Pair {
        a: Param,
        b: Param,
    }

    impl Module for Pair {
        fn visit(&self, f: &mut dyn FnMut(&Param)) {
            f(&self.a);
            f(&self.b);
        }
        fn visit_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
            f(&mut self.a);
            f(&mut self.b);
        }
    }

    fn pair() -> Pair {
        Pair {
            a: Param::new(Tensor::from_rows(&[&[1.0, 2.0]])),
            b: Param::new(Tensor::from_rows(&[&[3.0], &[4.0]])),
        }
    }

    #[test]
    fn bind_reuses_var_within_one_stamp() {
        let p = Param::new(Tensor::ones(1, 1));
        let g = Graph::new();
        let stamp = GraphStamp::next();
        let v1 = p.bind(&g, stamp);
        let v2 = p.bind(&g, stamp);
        assert_eq!(v1, v2);
        let v3 = p.bind(&g, GraphStamp::next());
        assert_ne!(v1, v3);
    }

    #[test]
    fn accumulate_folds_gradient_and_clears_binding() {
        let mut p = Param::new(Tensor::row(&[2.0, 3.0]));
        let g = Graph::new();
        let stamp = GraphStamp::next();
        let v = p.bind(&g, stamp);
        let sq = g.mul(v, v);
        let loss = g.sum_all(sq);
        let grads = g.backward(loss);
        p.accumulate(&grads);
        assert_eq!(p.grad.data(), &[4.0, 6.0]);
        // Second accumulate is a no-op because the binding is consumed.
        p.accumulate(&grads);
        assert_eq!(p.grad.data(), &[4.0, 6.0]);
    }

    #[test]
    fn weight_sharing_accumulates_both_uses() {
        let mut p = Param::new(Tensor::row(&[5.0]));
        let g = Graph::new();
        let stamp = GraphStamp::next();
        let v1 = p.bind(&g, stamp);
        let v2 = p.bind(&g, stamp);
        let s = g.add(v1, v2); // same var twice
        let loss = g.sum_all(s);
        let grads = g.backward(loss);
        p.accumulate(&grads);
        assert_eq!(p.grad.data(), &[2.0]);
    }

    #[test]
    fn state_roundtrip() {
        let m = pair();
        let state = m.state();
        let mut other = pair();
        other.a.value = Tensor::zeros(1, 2);
        other.load_state(&state);
        assert_eq!(other.a.value.data(), &[1.0, 2.0]);
        assert_eq!(m.num_params(), 4);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn load_state_rejects_wrong_shape() {
        let mut m = pair();
        let mut state = m.state();
        state[0] = Tensor::zeros(2, 2);
        m.load_state(&state);
    }

    #[test]
    fn clip_grad_norm_scales_down() {
        let mut m = pair();
        m.a.grad = Tensor::from_rows(&[&[3.0, 0.0]]);
        m.b.grad = Tensor::from_rows(&[&[4.0], &[0.0]]);
        let norm = clip_grad_norm(&mut m, 1.0);
        assert!((norm - 5.0).abs() < 1e-6);
        let mut sq = 0.0;
        m.visit(&mut |p| sq += p.grad.data().iter().map(|&g| g * g).sum::<f32>());
        assert!((sq.sqrt() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn clip_grad_norm_leaves_small_gradients() {
        let mut m = pair();
        m.a.grad = Tensor::from_rows(&[&[0.1, 0.0]]);
        let norm = clip_grad_norm(&mut m, 1.0);
        assert!(norm < 1.0);
        assert_eq!(m.a.grad.data(), &[0.1, 0.0]);
    }
}
