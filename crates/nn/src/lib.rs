//! Neural-network building blocks for the EMBA reproduction.
//!
//! Everything the paper's models need, implemented from scratch on top of
//! [`emba_tensor`]:
//!
//! * [`Param`]/[`Module`] — trainable parameters with graph binding and a
//!   deterministic visitor used by optimizers and checkpoints.
//! * [`Linear`], [`Embedding`], [`LayerNorm`] — the basic layers.
//! * [`MultiHeadAttention`], [`BertEncoder`] — a miniature BERT with
//!   token/position/segment embeddings, post-LN encoder layers, and a tanh
//!   pooler. The paper's `[CLS]`-based baselines read `pooled`; EMBA reads
//!   the per-token outputs.
//! * [`GruCell`]/[`BiGru`] — the RNN substrate for the DeepMatcher baseline.
//! * [`Adam`], [`LinearSchedule`] — the paper's optimizer and LR schedule
//!   (linear decay with one epoch of warmup).
//! * [`mlm`] — masked-language-model pre-training, standing in for the
//!   public BERT checkpoint the paper fine-tunes.
//!
//! # Example: a tiny encoder forward pass
//!
//! ```
//! use emba_nn::{BertConfig, BertEncoder, GraphStamp};
//! use emba_tensor::Graph;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let enc = BertEncoder::new(BertConfig::tiny(100), &mut rng);
//! let g = Graph::new();
//! let out = enc.forward(&g, GraphStamp::next(), &[2, 17, 42, 3], &[0, 0, 1, 1], false, &mut rng);
//! assert_eq!(g.value(out.tokens).shape(), (4, 16));
//! ```

mod attention;
mod gru;
mod layers;
pub mod mlm;
mod optim;
mod param;
pub mod skipgram;
mod transformer;

pub use attention::MultiHeadAttention;
pub use gru::{BiGru, GruCell};
pub use layers::{dropout, Embedding, LayerNorm, Linear};
pub use optim::{Adam, AdamState, AdamStateError, LinearSchedule, MomentPair};
pub use param::{clip_grad_norm, GraphStamp, Module, Param};
pub use skipgram::{pretrain_skipgram, SkipGramConfig};
pub use transformer::{summed_last_attention, BertBatchOutput, BertConfig, BertEncoder, BertOutput};
