//! A miniature BERT: learned token/position/segment embeddings and a stack
//! of post-layer-norm transformer encoder layers.
//!
//! Architecturally this is `bert-base-uncased` scaled down to dimensions a
//! single CPU core can pre-train from scratch (see `DESIGN.md` §2); every
//! structural element of the original — WordPiece input ids, segment ids,
//! multi-head self-attention, GELU feed-forward, residual + LayerNorm, a
//! tanh pooler over `[CLS]` — is present so the EMBA/JointBERT heads built
//! on top match the paper exactly.

use emba_tensor::{Graph, RowGroups, Tensor, Var};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::attention::MultiHeadAttention;
use crate::layers::{dropout, Embedding, LayerNorm, Linear};
use crate::param::{GraphStamp, Module, Param};

/// Hyperparameters of a [`BertEncoder`].
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct BertConfig {
    /// WordPiece vocabulary size.
    pub vocab_size: usize,
    /// Hidden width of every layer.
    pub hidden: usize,
    /// Number of encoder layers.
    pub layers: usize,
    /// Attention heads per layer.
    pub heads: usize,
    /// Feed-forward inner width.
    pub ff_dim: usize,
    /// Maximum sequence length (learned position table size).
    pub max_len: usize,
    /// Dropout probability applied to embeddings, attention, and FFN.
    pub dropout: f32,
}

impl BertConfig {
    /// The repo's stand-in for BERT-base: 4 layers × 128 dims × 4 heads.
    pub fn base(vocab_size: usize) -> Self {
        Self {
            vocab_size,
            hidden: 128,
            layers: 4,
            heads: 4,
            ff_dim: 256,
            max_len: 128,
            dropout: 0.1,
        }
    }

    /// Stand-in for BERT-small (the paper's EMBA (SB) variant): fewer layers
    /// and a narrower hidden width.
    pub fn small(vocab_size: usize) -> Self {
        Self {
            hidden: 64,
            layers: 2,
            heads: 4,
            ff_dim: 128,
            ..Self::base(vocab_size)
        }
    }

    /// Stand-in for distilBERT (the paper's EMBA (DB) variant): half the
    /// layers at the full hidden width.
    pub fn distil(vocab_size: usize) -> Self {
        Self {
            layers: 2,
            ..Self::base(vocab_size)
        }
    }

    /// A micro config for unit tests.
    pub fn tiny(vocab_size: usize) -> Self {
        Self {
            vocab_size,
            hidden: 16,
            layers: 1,
            heads: 2,
            ff_dim: 32,
            max_len: 32,
            dropout: 0.0,
        }
    }
}

/// GELU feed-forward block: `Linear -> GELU -> Linear`.
#[derive(Debug)]
struct FeedForward {
    up: Linear,
    down: Linear,
}

impl FeedForward {
    fn new<R: Rng + ?Sized>(hidden: usize, ff_dim: usize, rng: &mut R) -> Self {
        Self {
            up: Linear::new(hidden, ff_dim, rng),
            down: Linear::new(ff_dim, hidden, rng),
        }
    }

    fn forward(&self, g: &Graph, stamp: GraphStamp, x: Var) -> Var {
        let h = self.up.forward_gelu(g, stamp, x);
        self.down.forward(g, stamp, h)
    }
}

impl Module for FeedForward {
    fn visit(&self, f: &mut dyn FnMut(&Param)) {
        self.up.visit(f);
        self.down.visit(f);
    }
    fn visit_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.up.visit_mut(f);
        self.down.visit_mut(f);
    }
}

/// One post-LN transformer encoder layer.
#[derive(Debug)]
struct EncoderLayer {
    attention: MultiHeadAttention,
    attn_norm: LayerNorm,
    ff: FeedForward,
    ff_norm: LayerNorm,
    dropout_p: f32,
}

impl EncoderLayer {
    fn new<R: Rng + ?Sized>(cfg: &BertConfig, rng: &mut R) -> Self {
        Self {
            attention: MultiHeadAttention::new(cfg.hidden, cfg.heads, cfg.dropout, rng),
            attn_norm: LayerNorm::new(cfg.hidden),
            ff: FeedForward::new(cfg.hidden, cfg.ff_dim, rng),
            ff_norm: LayerNorm::new(cfg.hidden),
            dropout_p: cfg.dropout,
        }
    }

    fn forward<R: Rng + ?Sized>(
        &self,
        g: &Graph,
        stamp: GraphStamp,
        x: Var,
        groups: &RowGroups,
        train: bool,
        rng: &mut R,
    ) -> (Var, Vec<Var>) {
        let _scope = emba_tensor::prof::scope("layer");
        let (attn_out, probs) =
            self.attention
                .forward_batch_with_probs(g, stamp, x, groups, train, rng);
        let x = self.attn_norm.forward(g, stamp, g.add(x, attn_out));
        let ff_out = {
            let _ffn_scope = emba_tensor::prof::scope("ffn");
            let ff_out = self.ff.forward(g, stamp, x);
            dropout(g, ff_out, self.dropout_p, train, rng)
        };
        let x = self.ff_norm.forward(g, stamp, g.add(x, ff_out));
        (x, probs)
    }
}

impl Module for EncoderLayer {
    fn visit(&self, f: &mut dyn FnMut(&Param)) {
        self.attention.visit(f);
        self.attn_norm.visit(f);
        self.ff.visit(f);
        self.ff_norm.visit(f);
    }
    fn visit_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.attention.visit_mut(f);
        self.attn_norm.visit_mut(f);
        self.ff.visit_mut(f);
        self.ff_norm.visit_mut(f);
    }
}

/// Output of one [`BertEncoder`] forward pass.
pub struct BertOutput {
    /// `[seq, hidden]` final-layer token representations.
    pub tokens: Var,
    /// Tanh-pooled `[1, hidden]` representation of the `[CLS]` position.
    pub pooled: Var,
    /// Per-head `[seq, seq]` attention probabilities of the **last** layer,
    /// kept for the paper's attention-score analysis (Figure 6).
    pub last_attention: Vec<Var>,
}

/// Output of one batched [`BertEncoder`] forward pass over `B` row-packed
/// sequences.
pub struct BertBatchOutput {
    /// `[ΣT, hidden]` final-layer token representations, row-packed in batch
    /// order with no padding.
    pub tokens: Var,
    /// Tanh-pooled `[B, hidden]` representations of each sequence's `[CLS]`
    /// position (row `i` belongs to sequence `i`).
    pub pooled: Var,
    /// Per-head `[ΣT, W]` grouped attention probabilities of the **last**
    /// layer (`W` = longest sequence in the batch; padding columns are zero).
    pub last_attention: Vec<Var>,
    /// Row ranges of each sequence inside the packed matrices.
    pub groups: RowGroups,
}

/// The miniature BERT encoder.
#[derive(Debug)]
pub struct BertEncoder {
    cfg: BertConfig,
    token_emb: Embedding,
    position_emb: Embedding,
    segment_emb: Embedding,
    emb_norm: LayerNorm,
    layers: Vec<EncoderLayer>,
    pooler: Linear,
}

impl BertEncoder {
    /// Randomly initialized encoder for `cfg`.
    pub fn new<R: Rng + ?Sized>(cfg: BertConfig, rng: &mut R) -> Self {
        let layers = (0..cfg.layers).map(|_| EncoderLayer::new(&cfg, rng)).collect();
        Self {
            token_emb: Embedding::new(cfg.vocab_size, cfg.hidden, rng),
            position_emb: Embedding::new(cfg.max_len, cfg.hidden, rng),
            segment_emb: Embedding::new(2, cfg.hidden, rng),
            emb_norm: LayerNorm::new(cfg.hidden),
            pooler: Linear::new(cfg.hidden, cfg.hidden, rng),
            layers,
            cfg,
        }
    }

    /// The encoder's configuration.
    pub fn config(&self) -> &BertConfig {
        &self.cfg
    }

    /// Hidden width.
    pub fn hidden(&self) -> usize {
        self.cfg.hidden
    }

    /// Encodes one token sequence.
    ///
    /// `token_ids` and `segment_ids` must have equal length not exceeding
    /// `config().max_len`. Position ids are implicit (0..len).
    ///
    /// # Panics
    ///
    /// Panics if the sequence is empty, too long, or the id slices have
    /// mismatched lengths.
    pub fn forward<R: Rng + ?Sized>(
        &self,
        g: &Graph,
        stamp: GraphStamp,
        token_ids: &[usize],
        segment_ids: &[usize],
        train: bool,
        rng: &mut R,
    ) -> BertOutput {
        let out = self.forward_batch(g, stamp, &[(token_ids, segment_ids)], train, rng);
        BertOutput {
            tokens: out.tokens,
            pooled: out.pooled,
            last_attention: out.last_attention,
        }
    }

    /// Encodes a batch of token sequences in one row-packed forward pass.
    ///
    /// Each `(token_ids, segment_ids)` pair is one sequence; sequences are
    /// packed row-wise into a `[ΣT, hidden]` activation matrix and attended
    /// block-diagonally (a sequence never attends across the batch).
    /// Position ids restart at 0 for every sequence.
    ///
    /// # Panics
    ///
    /// Panics if the batch is empty or any sequence is empty, too long, or
    /// has mismatched id slices.
    pub fn forward_batch<R: Rng + ?Sized>(
        &self,
        g: &Graph,
        stamp: GraphStamp,
        seqs: &[(&[usize], &[usize])],
        train: bool,
        rng: &mut R,
    ) -> BertBatchOutput {
        assert!(!seqs.is_empty(), "cannot encode an empty batch");
        let total: usize = seqs.iter().map(|(ids, _)| ids.len()).sum();
        let mut ids = Vec::with_capacity(total);
        let mut positions = Vec::with_capacity(total);
        let mut segments = Vec::with_capacity(total);
        let mut lens = Vec::with_capacity(seqs.len());
        for (token_ids, segment_ids) in seqs {
            let len = token_ids.len();
            assert!(len > 0, "cannot encode an empty sequence");
            assert!(
                len <= self.cfg.max_len,
                "sequence length {len} exceeds max_len {}",
                self.cfg.max_len
            );
            assert_eq!(
                segment_ids.len(),
                len,
                "segment ids length {} != token ids length {len}",
                segment_ids.len()
            );
            ids.extend_from_slice(token_ids);
            positions.extend(0..len);
            segments.extend_from_slice(segment_ids);
            lens.push(len);
        }
        let groups = RowGroups::from_lens(&lens);
        let _scope = emba_tensor::prof::scope("bert");

        let tok = self.token_emb.forward(g, stamp, &ids);
        let pos = self.position_emb.forward(g, stamp, &positions);
        let seg = self.segment_emb.forward(g, stamp, &segments);
        let sum = g.add(g.add(tok, pos), seg);
        let mut x = self.emb_norm.forward(g, stamp, sum);
        x = dropout(g, x, self.cfg.dropout, train, rng);

        let mut last_attention = Vec::new();
        for layer in &self.layers {
            let (next, probs) = layer.forward(g, stamp, x, &groups, train, rng);
            x = next;
            last_attention = probs;
        }

        let starts: Vec<usize> = (0..groups.len()).map(|i| groups.start(i)).collect();
        let cls = g.gather_rows(x, &starts);
        let pooled = g.tanh(self.pooler.forward(g, stamp, cls));
        BertBatchOutput {
            tokens: x,
            pooled,
            last_attention,
            groups,
        }
    }
}

impl Module for BertEncoder {
    fn visit(&self, f: &mut dyn FnMut(&Param)) {
        self.token_emb.visit(f);
        self.position_emb.visit(f);
        self.segment_emb.visit(f);
        self.emb_norm.visit(f);
        for l in &self.layers {
            l.visit(f);
        }
        self.pooler.visit(f);
    }
    fn visit_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.token_emb.visit_mut(f);
        self.position_emb.visit_mut(f);
        self.segment_emb.visit_mut(f);
        self.emb_norm.visit_mut(f);
        for l in &mut self.layers {
            l.visit_mut(f);
        }
        self.pooler.visit_mut(f);
    }
}

/// Sums the last-layer per-head attention into a `[seq, seq]` matrix, as the
/// paper does (summing over the multi-head attention of the last layer,
/// following Wolf et al.).
pub fn summed_last_attention(g: &Graph, out: &BertOutput) -> Tensor {
    MultiHeadAttention::summed_probs(g, &out.last_attention)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn encoder(seed: u64) -> BertEncoder {
        let mut rng = StdRng::seed_from_u64(seed);
        BertEncoder::new(BertConfig::tiny(50), &mut rng)
    }

    #[test]
    fn forward_shapes() {
        let enc = encoder(0);
        let mut rng = StdRng::seed_from_u64(1);
        let g = Graph::new();
        let out = enc.forward(
            &g,
            GraphStamp::next(),
            &[2, 5, 9, 3],
            &[0, 0, 1, 1],
            false,
            &mut rng,
        );
        assert_eq!(g.value(out.tokens).shape(), (4, 16));
        assert_eq!(g.value(out.pooled).shape(), (1, 16));
        assert_eq!(out.last_attention.len(), 2);
    }

    #[test]
    fn deterministic_in_eval_mode() {
        let enc = encoder(7);
        let mut rng = StdRng::seed_from_u64(2);
        let run = |rng: &mut StdRng| {
            let g = Graph::new();
            let out = enc.forward(&g, GraphStamp::next(), &[1, 2, 3], &[0, 0, 0], false, rng);
            g.value(out.tokens)
        };
        let a = run(&mut rng);
        let b = run(&mut rng);
        assert_eq!(a, b);
    }

    #[test]
    fn segments_change_output() {
        let enc = encoder(3);
        let mut rng = StdRng::seed_from_u64(4);
        let g = Graph::new();
        let a = enc.forward(&g, GraphStamp::next(), &[1, 2], &[0, 0], false, &mut rng);
        let b = enc.forward(&g, GraphStamp::next(), &[1, 2], &[0, 1], false, &mut rng);
        assert_ne!(g.value(a.tokens), g.value(b.tokens));
    }

    #[test]
    fn all_params_receive_gradient() {
        let mut enc = encoder(5);
        let mut rng = StdRng::seed_from_u64(6);
        let g = Graph::new();
        let stamp = GraphStamp::next();
        let out = enc.forward(&g, stamp, &[1, 2, 3, 4], &[0, 0, 1, 1], false, &mut rng);
        let combined = g.concat_rows(&[out.tokens, out.pooled]);
        let sq = g.mul(combined, combined);
        let loss = g.mean_all(sq);
        let grads = g.backward(loss);
        enc.accumulate_gradients(&grads);
        let mut zero_params = 0usize;
        let mut total = 0usize;
        enc.visit(&mut |p| {
            total += 1;
            if p.grad.norm() == 0.0 {
                zero_params += 1;
            }
        });
        // Embedding tables only receive gradient at gathered rows; they are
        // still nonzero overall. Every parameter tensor should be touched.
        assert_eq!(zero_params, 0, "{zero_params}/{total} params got no gradient");
    }

    #[test]
    fn batched_matches_per_example() {
        let enc = encoder(11);
        let mut rng = StdRng::seed_from_u64(12);
        let g = Graph::new();
        let stamp = GraphStamp::next();
        let seqs: [(&[usize], &[usize]); 3] = [
            (&[2, 5, 9, 3], &[0, 0, 1, 1]),
            (&[1, 2], &[0, 1]),
            (&[7, 7, 7, 1, 4], &[0, 0, 0, 1, 1]),
        ];
        let batch = enc.forward_batch(&g, stamp, &seqs, false, &mut rng);
        let tokens = g.value(batch.tokens);
        let pooled = g.value(batch.pooled);
        assert_eq!(tokens.shape(), (11, 16));
        assert_eq!(pooled.shape(), (3, 16));
        for p in &batch.last_attention {
            assert_eq!(g.value(*p).shape(), (11, 5));
        }
        for (i, (ids, segs)) in seqs.iter().enumerate() {
            let single = enc.forward(&g, stamp, ids, segs, false, &mut rng);
            let st = g.value(single.tokens);
            let (r0, r1) = batch.groups.range(i);
            for (r, rr) in (r0..r1).enumerate() {
                for (x, y) in tokens.row_slice(rr).iter().zip(st.row_slice(r)) {
                    assert!((x - y).abs() < 1e-5, "tokens differ for sequence {i}");
                }
            }
            let sp = g.value(single.pooled);
            for (x, y) in pooled.row_slice(i).iter().zip(sp.row_slice(0)) {
                assert!((x - y).abs() < 1e-5, "pooled differs for sequence {i}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "exceeds max_len")]
    fn rejects_overlong_sequence() {
        let enc = encoder(8);
        let mut rng = StdRng::seed_from_u64(9);
        let g = Graph::new();
        let ids: Vec<usize> = (0..40).map(|i| i % 10).collect();
        let segs = vec![0; 40];
        let _ = enc.forward(&g, GraphStamp::next(), &ids, &segs, false, &mut rng);
    }

    #[test]
    fn config_presets_are_consistent() {
        let base = BertConfig::base(1000);
        let small = BertConfig::small(1000);
        let distil = BertConfig::distil(1000);
        assert!(small.hidden < base.hidden && small.layers < base.layers);
        assert_eq!(distil.hidden, base.hidden);
        assert!(distil.layers < base.layers);
    }

    #[test]
    fn param_count_scales_with_config() {
        let mut rng = StdRng::seed_from_u64(10);
        let base = BertEncoder::new(BertConfig::base(500), &mut rng);
        let small = BertEncoder::new(BertConfig::small(500), &mut rng);
        assert!(base.num_params() > 2 * small.num_params());
    }
}
