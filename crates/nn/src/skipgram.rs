//! Skip-gram embedding pre-training with negative sampling (Mikolov et al.),
//! the protocol behind fastText vectors.
//!
//! The paper's EMBA (FT) variant replaces BERT with a fastText model
//! "pre-trained using all of the 7 EM datasets". This module reproduces
//! that pre-training for the subword embedding table of
//! [`crate::Embedding`]-based encoders: windows of co-occurring subword ids
//! are positive pairs; negatives are sampled from the smoothed unigram
//! distribution.

use emba_tensor::Tensor;
use rand::Rng;

use crate::layers::Embedding;

/// Skip-gram training settings.
#[derive(Debug, Clone, Copy)]
pub struct SkipGramConfig {
    /// Context window radius.
    pub window: usize,
    /// Negative samples per positive pair.
    pub negatives: usize,
    /// Learning rate (plain SGD, as in word2vec).
    pub lr: f32,
    /// Passes over the corpus.
    pub epochs: usize,
    /// Unigram smoothing exponent for the negative table (word2vec: 0.75).
    pub smoothing: f64,
}

impl Default for SkipGramConfig {
    fn default() -> Self {
        Self {
            window: 3,
            negatives: 4,
            lr: 0.05,
            epochs: 2,
            smoothing: 0.75,
        }
    }
}

/// Pre-trains `embedding` in place over `corpus` (tokenized sequences).
/// Ids below `num_reserved` (special tokens) are skipped as centers and
/// never drawn as negatives. Returns the mean loss per epoch.
pub fn pretrain_skipgram<R: Rng + ?Sized>(
    embedding: &mut Embedding,
    corpus: &[Vec<usize>],
    num_reserved: usize,
    cfg: &SkipGramConfig,
    rng: &mut R,
) -> Vec<f32> {
    let vocab = embedding.vocab();
    let dim = embedding.dim();

    // Output (context) vectors, discarded after training as in word2vec.
    let mut context = Tensor::rand_uniform(vocab, dim, 0.5 / dim as f32, rng);

    // Smoothed unigram table for negative sampling.
    let mut counts = vec![0f64; vocab];
    for seq in corpus {
        for &t in seq {
            if t >= num_reserved && t < vocab {
                counts[t] += 1.0;
            }
        }
    }
    let weights: Vec<f64> = counts.iter().map(|&c| c.powf(cfg.smoothing)).collect();
    let total_weight: f64 = weights.iter().sum();
    if total_weight == 0.0 {
        return vec![0.0; cfg.epochs];
    }
    let cumulative: Vec<f64> = weights
        .iter()
        .scan(0.0, |acc, &w| {
            *acc += w;
            Some(*acc)
        })
        .collect();
    let sample_negative = |rng: &mut R| -> usize {
        let target = rng.gen::<f64>() * total_weight;
        match cumulative.binary_search_by(|probe| {
            probe.partial_cmp(&target).expect("finite cumulative weights")
        }) {
            Ok(i) | Err(i) => i.min(vocab - 1),
        }
    };

    let mut epoch_losses = Vec::with_capacity(cfg.epochs);
    for _ in 0..cfg.epochs {
        let mut loss_sum = 0.0f64;
        let mut pairs = 0usize;
        for seq in corpus {
            for (i, &center) in seq.iter().enumerate() {
                if center < num_reserved || center >= vocab {
                    continue;
                }
                let lo = i.saturating_sub(cfg.window);
                let hi = (i + cfg.window + 1).min(seq.len());
                for (j, &ctx) in seq.iter().enumerate().take(hi).skip(lo) {
                    if j == i || ctx < num_reserved || ctx >= vocab {
                        continue;
                    }
                    loss_sum += f64::from(sgd_pair(
                        embedding, &mut context, center, ctx, true, cfg.lr,
                    ));
                    for _ in 0..cfg.negatives {
                        let neg = sample_negative(rng);
                        if neg == ctx {
                            continue;
                        }
                        loss_sum += f64::from(sgd_pair(
                            embedding, &mut context, center, neg, false, cfg.lr,
                        ));
                    }
                    pairs += 1;
                }
            }
        }
        epoch_losses.push(if pairs == 0 {
            0.0
        } else {
            (loss_sum / pairs as f64) as f32
        });
    }
    epoch_losses
}

/// One SGD update on a (center, context) pair with binary label; returns
/// the logistic loss before the update.
fn sgd_pair(
    embedding: &mut Embedding,
    context: &mut Tensor,
    center: usize,
    other: usize,
    positive: bool,
    lr: f32,
) -> f32 {
    let dim = embedding.dim();
    let cols = context.cols();
    let dot: f32 = {
        let w = embedding.weight.value.row_slice(center);
        let c = context.row_slice(other);
        w.iter().zip(c).map(|(&a, &b)| a * b).sum()
    };
    let label = if positive { 1.0 } else { 0.0 };
    let p = 1.0 / (1.0 + (-dot).exp());
    let grad = p - label; // d(loss)/d(dot)
    let loss = if positive {
        -(p.max(1e-7)).ln()
    } else {
        -((1.0 - p).max(1e-7)).ln()
    };

    // Update both vectors: w -= lr * grad * c; c -= lr * grad * w.
    let w_old: Vec<f32> = embedding.weight.value.row_slice(center).to_vec();
    {
        let c = &mut context.data_mut()[other * cols..other * cols + dim];
        let w = &w_old;
        for k in 0..dim {
            c[k] -= lr * grad * w[k];
        }
    }
    {
        let c_new: Vec<f32> = context.row_slice(other).to_vec();
        let data = embedding.weight.value.data_mut();
        let w = &mut data[center * dim..(center + 1) * dim];
        for k in 0..dim {
            // c_new already moved one step; using it (instead of c_old)
            // matches word2vec's in-place update order.
            w[k] -= lr * grad * c_new[k];
        }
    }
    loss
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cosine(a: &[f32], b: &[f32]) -> f32 {
        let dot: f32 = a.iter().zip(b).map(|(&x, &y)| x * y).sum();
        let na: f32 = a.iter().map(|&x| x * x).sum::<f32>().sqrt();
        let nb: f32 = b.iter().map(|&x| x * x).sum::<f32>().sqrt();
        dot / (na * nb).max(1e-9)
    }

    /// Corpus with two disjoint topic clusters: tokens 10-14 co-occur, and
    /// tokens 20-24 co-occur. Skip-gram must place same-cluster tokens
    /// closer than cross-cluster ones.
    #[test]
    fn skipgram_groups_cooccurring_tokens() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut corpus = Vec::new();
        for i in 0..150 {
            let base = if i % 2 == 0 { 10 } else { 20 };
            let mut seq = Vec::new();
            for _ in 0..8 {
                seq.push(base + rng.gen_range(0..5));
            }
            corpus.push(seq);
        }
        let mut emb = Embedding::new(30, 16, &mut rng);
        let losses = pretrain_skipgram(
            &mut emb,
            &corpus,
            7,
            &SkipGramConfig {
                epochs: 4,
                lr: 0.025,
                ..SkipGramConfig::default()
            },
            &mut rng,
        );
        // SGD with negative sampling oscillates epoch-to-epoch; require the
        // best later epoch to improve on the first.
        let best_late = losses[1..].iter().copied().fold(f32::INFINITY, f32::min);
        assert!(best_late < losses[0], "loss should fall: {losses:?}");

        let same = cosine(emb.weight.value.row_slice(10), emb.weight.value.row_slice(12));
        let cross = cosine(emb.weight.value.row_slice(10), emb.weight.value.row_slice(22));
        assert!(
            same > cross + 0.1,
            "same-cluster similarity {same} should exceed cross-cluster {cross}"
        );
    }

    #[test]
    fn empty_corpus_is_a_no_op() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut emb = Embedding::new(10, 4, &mut rng);
        let before = emb.weight.value.clone();
        let losses = pretrain_skipgram(&mut emb, &[], 7, &SkipGramConfig::default(), &mut rng);
        assert_eq!(losses.len(), SkipGramConfig::default().epochs);
        assert_eq!(emb.weight.value, before);
    }

    #[test]
    fn special_tokens_are_never_updated() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut emb = Embedding::new(12, 4, &mut rng);
        let special_before = emb.weight.value.row_slice(3).to_vec();
        let corpus = vec![vec![3usize, 8, 9, 3, 10, 11]; 20];
        pretrain_skipgram(&mut emb, &corpus, 7, &SkipGramConfig::default(), &mut rng);
        // Id 3 is reserved (< 7): neither a center nor a context update may
        // touch it... as a *center*. It can still appear as a context of a
        // real token? No: contexts below num_reserved are skipped too.
        assert_eq!(emb.weight.value.row_slice(3), &special_before[..]);
    }
}
