//! Basic trainable layers: linear projections, embedding tables, and layer
//! normalization.

use std::cell::RefCell;
use std::sync::Arc;

use emba_tensor::{backend, Graph, QuantizedMatrix, Tensor, Var};
use rand::Rng;

use crate::param::{GraphStamp, Module, Param};

/// Cached int8 twin of a weight matrix, keyed so weight updates invalidate
/// it: the buffer address plus the bit patterns of the first and last
/// elements. The address alone is not enough — the allocator can hand a new
/// weight tensor the address a previous one just freed.
#[derive(Debug)]
struct QuantCache {
    key: (usize, u32, u32),
    q: Arc<QuantizedMatrix>,
}

fn quant_key(w: &Tensor) -> (usize, u32, u32) {
    let d = w.data();
    (
        d.as_ptr() as usize,
        d.first().map_or(0, |v| v.to_bits()),
        d.last().map_or(0, |v| v.to_bits()),
    )
}

/// Layers below this weight size stay f32 even under the int8 backend.
/// Tiny projections (the 2-class match head, scalar gates) offer no
/// meaningful GEMM work to accelerate, but sit closest to the logits where
/// quantization noise lands directly on the output probability.
const QUANT_MIN_ELEMS: usize = 2048;

/// Affine projection `y = x · W + b` with `W: [in, out]`, `b: [1, out]`.
#[derive(Debug)]
pub struct Linear {
    /// Weight matrix, `[in_dim, out_dim]`.
    pub weight: Param,
    /// Bias row, `[1, out_dim]`.
    pub bias: Param,
    /// Lazily built int8 weights, used when the int8 backend is installed.
    /// `RefCell` is fine: models live on one thread (the serve engine builds
    /// its matcher inside the worker thread precisely because matchers are
    /// not `Send`).
    quant: RefCell<Option<QuantCache>>,
}

impl Linear {
    /// Xavier-initialized linear layer.
    pub fn new<R: Rng + ?Sized>(in_dim: usize, out_dim: usize, rng: &mut R) -> Self {
        Self {
            weight: Param::new(Tensor::xavier(in_dim, out_dim, rng)),
            bias: Param::new(Tensor::zeros(1, out_dim)),
            quant: RefCell::new(None),
        }
    }

    /// The int8 twin of the current weights, quantizing (once) on first use
    /// or after the weight tensor changed.
    pub fn quantized_weight(&self) -> Arc<QuantizedMatrix> {
        let key = quant_key(&self.weight.value);
        let mut slot = self.quant.borrow_mut();
        match slot.as_ref() {
            Some(c) if c.key == key => c.q.clone(),
            _ => {
                let q = Arc::new(QuantizedMatrix::quantize(&self.weight.value));
                *slot = Some(QuantCache { key, q: q.clone() });
                q
            }
        }
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.weight.value.rows()
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.weight.value.cols()
    }

    /// Applies the projection to an `[m, in]` input, producing `[m, out]`,
    /// via the fused affine tape op.
    /// Whether this layer runs int8 when the quantized backend is installed.
    fn quantizable(&self) -> bool {
        self.weight.value.rows() * self.weight.value.cols() >= QUANT_MIN_ELEMS
    }

    pub fn forward(&self, g: &Graph, stamp: GraphStamp, x: Var) -> Var {
        if backend::quantized() && self.quantizable() {
            let q = self.quantized_weight();
            return g.linear_q8(x, &q, &self.bias.value);
        }
        let w = self.weight.bind(g, stamp);
        let b = self.bias.bind(g, stamp);
        g.linear(x, w, b)
    }

    /// Applies the projection followed by GELU as one fused tape op,
    /// producing `[m, out]`.
    pub fn forward_gelu(&self, g: &Graph, stamp: GraphStamp, x: Var) -> Var {
        if backend::quantized() && self.quantizable() {
            let q = self.quantized_weight();
            return g.linear_q8_gelu(x, &q, &self.bias.value);
        }
        let w = self.weight.bind(g, stamp);
        let b = self.bias.bind(g, stamp);
        g.linear_bias_gelu(x, w, b)
    }
}

impl Module for Linear {
    fn visit(&self, f: &mut dyn FnMut(&Param)) {
        f(&self.weight);
        f(&self.bias);
    }
    fn visit_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        f(&mut self.bias);
    }
}

/// A lookup table mapping integer ids to learned `[1, dim]` rows.
#[derive(Debug)]
pub struct Embedding {
    /// The table, `[vocab, dim]`.
    pub weight: Param,
}

impl Embedding {
    /// Normal(0, 0.02)-initialized table, matching BERT's initializer.
    pub fn new<R: Rng + ?Sized>(vocab: usize, dim: usize, rng: &mut R) -> Self {
        Self {
            weight: Param::new(Tensor::rand_normal(vocab, dim, 0.0, 0.02, rng)),
        }
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.weight.value.rows()
    }

    /// Embedding width.
    pub fn dim(&self) -> usize {
        self.weight.value.cols()
    }

    /// Gathers the rows for `ids`, producing `[len(ids), dim]`.
    pub fn forward(&self, g: &Graph, stamp: GraphStamp, ids: &[usize]) -> Var {
        let w = self.weight.bind(g, stamp);
        g.embedding(w, ids)
    }
}

impl Module for Embedding {
    fn visit(&self, f: &mut dyn FnMut(&Param)) {
        f(&self.weight);
    }
    fn visit_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
    }
}

/// Per-row layer normalization with learned scale and shift.
#[derive(Debug)]
pub struct LayerNorm {
    /// Scale, `[1, dim]`, initialized to ones.
    pub gamma: Param,
    /// Shift, `[1, dim]`, initialized to zeros.
    pub beta: Param,
}

impl LayerNorm {
    /// Identity-initialized layer norm over rows of width `dim`.
    pub fn new(dim: usize) -> Self {
        Self {
            gamma: Param::new(Tensor::ones(1, dim)),
            beta: Param::new(Tensor::zeros(1, dim)),
        }
    }

    /// Normalizes each row of an `[m, dim]` input.
    pub fn forward(&self, g: &Graph, stamp: GraphStamp, x: Var) -> Var {
        let gamma = self.gamma.bind(g, stamp);
        let beta = self.beta.bind(g, stamp);
        g.layer_norm(x, gamma, beta)
    }
}

impl Module for LayerNorm {
    fn visit(&self, f: &mut dyn FnMut(&Param)) {
        f(&self.gamma);
        f(&self.beta);
    }
    fn visit_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.gamma);
        f(&mut self.beta);
    }
}

/// Applies inverted dropout when `train` is set; identity otherwise.
pub fn dropout<R: Rng + ?Sized>(g: &Graph, x: Var, p: f32, train: bool, rng: &mut R) -> Var {
    if train && p > 0.0 {
        g.dropout(x, p, rng)
    } else {
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn linear_shapes_and_bias() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut lin = Linear::new(3, 2, &mut rng);
        lin.weight.value = Tensor::zeros(3, 2);
        lin.bias.value = Tensor::row(&[1.0, -1.0]);
        let g = Graph::new();
        let x = g.leaf(Tensor::ones(4, 3));
        let y = lin.forward(&g, GraphStamp::next(), x);
        let v = g.value(y);
        assert_eq!(v.shape(), (4, 2));
        assert_eq!(v.row_slice(0), &[1.0, -1.0]);
        assert_eq!(lin.in_dim(), 3);
        assert_eq!(lin.out_dim(), 2);
    }

    #[test]
    fn linear_gradients_flow_to_both_params() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut lin = Linear::new(2, 2, &mut rng);
        let g = Graph::new();
        let stamp = GraphStamp::next();
        let x = g.leaf(Tensor::ones(1, 2));
        let y = lin.forward(&g, stamp, x);
        let loss = g.sum_all(y);
        let grads = g.backward(loss);
        lin.accumulate_gradients(&grads);
        assert!(lin.weight.grad.norm() > 0.0);
        assert!(lin.bias.grad.norm() > 0.0);
    }

    #[test]
    fn embedding_gathers_rows() {
        let mut rng = StdRng::seed_from_u64(2);
        let emb = Embedding::new(10, 4, &mut rng);
        let g = Graph::new();
        let e = emb.forward(&g, GraphStamp::next(), &[3, 3, 7]);
        let v = g.value(e);
        assert_eq!(v.shape(), (3, 4));
        assert_eq!(v.row_slice(0), v.row_slice(1));
        assert_eq!(emb.vocab(), 10);
        assert_eq!(emb.dim(), 4);
    }

    #[test]
    fn layer_norm_normalizes_rows() {
        let ln = LayerNorm::new(8);
        let g = Graph::new();
        let x = g.leaf(Tensor::from_vec(
            2,
            8,
            (0..16).map(|i| i as f32).collect(),
        ));
        let y = ln.forward(&g, GraphStamp::next(), x);
        let v = g.value(y);
        for r in 0..2 {
            let row = v.row_slice(r);
            let mean: f32 = row.iter().sum::<f32>() / 8.0;
            assert!(mean.abs() < 1e-4);
        }
    }

    #[test]
    fn dropout_identity_in_eval_mode() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = Graph::new();
        let x = g.leaf(Tensor::ones(2, 2));
        let y = dropout(&g, x, 0.5, false, &mut rng);
        assert_eq!(y, x);
    }
}
