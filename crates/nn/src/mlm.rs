//! Masked-language-model pre-training for the miniature BERT encoder.
//!
//! The paper fine-tunes a *pre-trained* BERT; since no public checkpoint can
//! be used here, this module reproduces the pre-training protocol itself:
//! BERT's 15% masking rule (80% `[MASK]`, 10% random token, 10% unchanged)
//! with a GELU + LayerNorm + vocabulary-projection prediction head, trained
//! with Adam. `emba-datagen` supplies the corpus (every serialized entity
//! description in the synthetic benchmark suite).

use emba_tensor::Graph;
use rand::Rng;

use crate::layers::{LayerNorm, Linear};
use crate::param::{GraphStamp, Module, Param};
use crate::transformer::BertEncoder;
use crate::Adam;

/// The transform head applied to masked positions before the vocabulary
/// projection, mirroring `BertLMPredictionHead`.
#[derive(Debug)]
pub struct MlmHead {
    transform: Linear,
    norm: LayerNorm,
    decoder: Linear,
}

impl MlmHead {
    /// Creates an MLM head for `hidden`-wide token states and `vocab` outputs.
    pub fn new<R: Rng + ?Sized>(hidden: usize, vocab: usize, rng: &mut R) -> Self {
        Self {
            transform: Linear::new(hidden, hidden, rng),
            norm: LayerNorm::new(hidden),
            decoder: Linear::new(hidden, vocab, rng),
        }
    }

    /// Projects `[k, hidden]` masked-position states to `[k, vocab]` logits.
    pub fn forward(
        &self,
        g: &Graph,
        stamp: GraphStamp,
        states: emba_tensor::Var,
    ) -> emba_tensor::Var {
        let h = self.transform.forward(g, stamp, states);
        let h = g.gelu(h);
        let h = self.norm.forward(g, stamp, h);
        self.decoder.forward(g, stamp, h)
    }
}

impl Module for MlmHead {
    fn visit(&self, f: &mut dyn FnMut(&Param)) {
        self.transform.visit(f);
        self.norm.visit(f);
        self.decoder.visit(f);
    }
    fn visit_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.transform.visit_mut(f);
        self.norm.visit_mut(f);
        self.decoder.visit_mut(f);
    }
}

/// Settings for [`pretrain_mlm`].
#[derive(Debug, Clone, Copy)]
pub struct MlmConfig {
    /// Fraction of tokens selected for prediction (BERT uses 0.15).
    pub mask_prob: f32,
    /// Id of the `[MASK]` token.
    pub mask_token: usize,
    /// Ids below this value are special tokens and never masked.
    pub num_reserved: usize,
    /// Number of passes over the corpus.
    pub epochs: usize,
    /// Peak learning rate.
    pub lr: f32,
}

impl Default for MlmConfig {
    fn default() -> Self {
        Self {
            mask_prob: 0.15,
            mask_token: 0,
            num_reserved: 1,
            epochs: 2,
            lr: 5e-4,
        }
    }
}

/// One masked training instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MaskedExample {
    /// Token ids after masking.
    pub input: Vec<usize>,
    /// Positions whose original token must be predicted.
    pub positions: Vec<usize>,
    /// Original token ids at `positions`.
    pub targets: Vec<usize>,
}

/// Applies BERT's masking rule to one sequence. Special tokens (ids below
/// `num_reserved`) are never selected. Guarantees at least one masked
/// position whenever any position is maskable.
pub fn mask_sequence<R: Rng + ?Sized>(
    tokens: &[usize],
    cfg: &MlmConfig,
    vocab: usize,
    rng: &mut R,
) -> MaskedExample {
    let mut input = tokens.to_vec();
    let mut positions = Vec::new();
    let mut targets = Vec::new();
    for (i, &t) in tokens.iter().enumerate() {
        if t < cfg.num_reserved {
            continue;
        }
        if rng.gen::<f32>() < cfg.mask_prob {
            positions.push(i);
            targets.push(t);
            let roll: f32 = rng.gen();
            if roll < 0.8 {
                input[i] = cfg.mask_token;
            } else if roll < 0.9 {
                input[i] = rng.gen_range(cfg.num_reserved..vocab);
            } // else: keep the original token
        }
    }
    if positions.is_empty() {
        // Force one mask so every example contributes signal.
        if let Some((i, &t)) = tokens
            .iter()
            .enumerate()
            .find(|(_, &t)| t >= cfg.num_reserved)
        {
            positions.push(i);
            targets.push(t);
            input[i] = cfg.mask_token;
        }
    }
    MaskedExample {
        input,
        positions,
        targets,
    }
}

/// Pre-trains `encoder` with MLM over `corpus` (already-tokenized sequences,
/// each within the encoder's `max_len`). Returns the mean loss of each epoch.
///
/// Empty sequences and sequences with no maskable token are skipped.
pub fn pretrain_mlm<R: Rng + ?Sized>(
    encoder: &mut BertEncoder,
    corpus: &[Vec<usize>],
    cfg: &MlmConfig,
    rng: &mut R,
) -> Vec<f32> {
    let vocab = encoder.config().vocab_size;
    let max_len = encoder.config().max_len;
    let mut head = MlmHead::new(encoder.hidden(), vocab, rng);
    let mut adam = Adam::new();
    let mut epoch_losses = Vec::with_capacity(cfg.epochs);

    let _mlm_scope = emba_tensor::prof::scope("mlm");
    for _ in 0..cfg.epochs {
        let mut total = 0.0f64;
        let mut count = 0usize;
        let mut order: Vec<usize> = (0..corpus.len()).collect();
        shuffle(&mut order, rng);
        for &idx in &order {
            let seq = &corpus[idx];
            if seq.is_empty() || seq.len() > max_len {
                continue;
            }
            let masked = mask_sequence(seq, cfg, vocab, rng);
            if masked.positions.is_empty() {
                continue;
            }

            let g = Graph::new();
            let stamp = GraphStamp::next();
            let segments = vec![0; masked.input.len()];
            let fwd_scope = emba_tensor::prof::scope("forward");
            let out = encoder.forward(&g, stamp, &masked.input, &segments, true, rng);
            // Gather the masked rows.
            let rows: Vec<_> = masked
                .positions
                .iter()
                .map(|&p| g.slice_rows(out.tokens, p, p + 1))
                .collect();
            let states = g.concat_rows(&rows);
            let logits = head.forward(&g, stamp, states);
            let loss = g.cross_entropy(logits, &masked.targets);
            total += f64::from(g.value(loss).item());
            count += 1;
            drop(fwd_scope);

            let bwd_scope = emba_tensor::prof::scope("backward");
            let grads = g.backward(loss);
            drop(bwd_scope);
            encoder.zero_grads();
            head.zero_grads();
            encoder.accumulate_gradients(&grads);
            head.accumulate_gradients(&grads);
            let _optim_scope = emba_tensor::prof::scope("optim");
            adam.step(encoder, cfg.lr);
            adam.step(&mut head, cfg.lr);
            grads.recycle();
            g.recycle();
        }
        epoch_losses.push(if count == 0 { 0.0 } else { (total / count as f64) as f32 });
    }
    epoch_losses
}

/// Fisher–Yates shuffle (kept local to avoid pulling `rand`'s slice trait
/// bound through the public API).
fn shuffle<R: Rng + ?Sized>(xs: &mut [usize], rng: &mut R) {
    for i in (1..xs.len()).rev() {
        xs.swap(i, rng.gen_range(0..=i));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transformer::BertConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cfg() -> MlmConfig {
        MlmConfig {
            mask_prob: 0.3,
            mask_token: 1,
            num_reserved: 4,
            epochs: 1,
            lr: 1e-3,
        }
    }

    #[test]
    fn masking_never_touches_special_tokens() {
        let mut rng = StdRng::seed_from_u64(0);
        let tokens = vec![2, 10, 11, 3, 12, 13, 3];
        for _ in 0..50 {
            let m = mask_sequence(&tokens, &cfg(), 50, &mut rng);
            for &p in &m.positions {
                assert!(tokens[p] >= 4, "special token at {p} was masked");
            }
            // Targets record the ORIGINAL ids.
            for (&p, &t) in m.positions.iter().zip(&m.targets) {
                assert_eq!(tokens[p], t);
            }
        }
    }

    #[test]
    fn masking_forces_at_least_one_position() {
        let mut rng = StdRng::seed_from_u64(1);
        let tokens = vec![2, 10, 3];
        let never = MlmConfig {
            mask_prob: 0.0,
            ..cfg()
        };
        let m = mask_sequence(&tokens, &never, 50, &mut rng);
        assert_eq!(m.positions, vec![1]);
        assert_eq!(m.input[1], never.mask_token);
    }

    #[test]
    fn masking_rate_is_close_to_configured() {
        let mut rng = StdRng::seed_from_u64(2);
        let tokens: Vec<usize> = (4..1004).collect();
        let m = mask_sequence(&tokens, &cfg(), 2000, &mut rng);
        let rate = m.positions.len() as f32 / 1000.0;
        assert!((rate - 0.3).abs() < 0.06, "empirical rate {rate}");
    }

    #[test]
    fn pretraining_reduces_loss_on_a_patterned_corpus() {
        // A corpus with strong bigram structure: token 2k is always followed
        // by 2k+1. MLM should learn this quickly even at tiny scale.
        let mut rng = StdRng::seed_from_u64(3);
        let mut corpus = Vec::new();
        for _ in 0..60 {
            let mut seq = vec![2usize]; // [CLS]-like
            for _ in 0..6 {
                let k = rng.gen_range(2..10) * 2;
                seq.push(k);
                seq.push(k + 1);
            }
            corpus.push(seq);
        }
        let mut enc = BertEncoder::new(BertConfig::tiny(24), &mut rng);
        let mlm_cfg = MlmConfig {
            mask_prob: 0.2,
            mask_token: 1,
            num_reserved: 4,
            // Six epochs (rather than four) keeps the 20% drop threshold
            // comfortably met for any reasonable seeded RNG stream; at four
            // the margin was only ~2% of the initial loss.
            epochs: 6,
            lr: 2e-3,
        };
        let losses = pretrain_mlm(&mut enc, &corpus, &mlm_cfg, &mut rng);
        assert_eq!(losses.len(), 6);
        assert!(
            losses[5] < losses[0] * 0.8,
            "loss did not fall: {losses:?}"
        );
    }
}
