//! Adam optimization with the paper's linearly decaying learning-rate
//! schedule and one-epoch warmup.

use std::collections::HashMap;
use std::fmt;

use emba_tensor::Tensor;
use serde::{Deserialize, Serialize};

use crate::param::Module;

/// Adam (Kingma & Ba, 2015) with optional decoupled weight decay.
///
/// Per-parameter first/second-moment state is keyed by [`crate::Param::id`],
/// so one optimizer instance can be reused across any module whose parameter
/// set is stable.
pub struct Adam {
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    step: u64,
    state: HashMap<u64, Moments>,
}

struct Moments {
    m: Tensor,
    v: Tensor,
}

/// Serializable snapshot of one parameter's Adam moments.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MomentPair {
    /// First-moment (mean) estimate.
    pub m: Tensor,
    /// Second-moment (uncentered variance) estimate.
    pub v: Tensor,
}

/// Serializable snapshot of an [`Adam`] instance, captured against one
/// module.
///
/// Moments are recorded in **module visit order**, not by [`crate::Param::id`]:
/// parameter ids come from a process-global counter and are different in
/// every process, so an id-keyed snapshot could never be restored after a
/// restart. Visit order is the same deterministic order the checkpoint
/// format already relies on.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AdamState {
    /// Completed optimizer steps (drives bias correction).
    pub step: u64,
    /// Per-parameter moments in module visit order. Parameters the optimizer
    /// has never updated snapshot as zero moments, which is exactly the state
    /// lazy initialization would give them.
    pub moments: Vec<MomentPair>,
}

/// Error returned by [`Adam::load_state`] when a snapshot does not fit the
/// module it is being restored against.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdamStateError(String);

impl fmt::Display for AdamStateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "optimizer state mismatch: {}", self.0)
    }
}

impl std::error::Error for AdamStateError {}

impl Adam {
    /// Adam with the conventional betas `(0.9, 0.999)` and `eps = 1e-8`.
    pub fn new() -> Self {
        Self {
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            step: 0,
            state: HashMap::new(),
        }
    }

    /// Enables decoupled (AdamW-style) weight decay.
    pub fn with_weight_decay(mut self, weight_decay: f32) -> Self {
        self.weight_decay = weight_decay;
        self
    }

    /// Number of completed steps.
    pub fn steps(&self) -> u64 {
        self.step
    }

    /// Captures the optimizer's state against `module`, in visit order.
    ///
    /// Restoring the result with [`Adam::load_state`] into a fresh `Adam`
    /// driving an identically shaped module makes the next [`Adam::step`]
    /// bit-identical to what this instance would have computed.
    pub fn state(&self, module: &dyn Module) -> AdamState {
        let mut moments = Vec::new();
        module.visit(&mut |p| {
            let (rows, cols) = p.value.shape();
            moments.push(match self.state.get(&p.id()) {
                Some(mo) => MomentPair { m: mo.m.clone(), v: mo.v.clone() },
                // Never stepped: lazy init would start from zeros.
                None => MomentPair { m: Tensor::zeros(rows, cols), v: Tensor::zeros(rows, cols) },
            });
        });
        AdamState { step: self.step, moments }
    }

    /// Restores a snapshot captured by [`Adam::state`], re-keying the
    /// moments onto `module`'s current parameter ids.
    ///
    /// Any previous state of this instance is discarded. Fails (leaving the
    /// optimizer untouched) if the snapshot's parameter count or any moment
    /// shape disagrees with the module.
    pub fn load_state(&mut self, module: &dyn Module, state: &AdamState) -> Result<(), AdamStateError> {
        let mut keyed = Vec::with_capacity(state.moments.len());
        let mut idx = 0usize;
        let mut error = None;
        module.visit(&mut |p| {
            if error.is_some() {
                return;
            }
            match state.moments.get(idx) {
                Some(mo) if mo.m.shape() == p.value.shape() && mo.v.shape() == p.value.shape() => {
                    keyed.push((p.id(), Moments { m: mo.m.clone(), v: mo.v.clone() }));
                }
                Some(mo) => {
                    error = Some(AdamStateError(format!(
                        "parameter {idx}: snapshot moments {:?}/{:?} vs value {:?}",
                        mo.m.shape(),
                        mo.v.shape(),
                        p.value.shape()
                    )))
                }
                None => error = Some(AdamStateError(format!("snapshot ends at parameter {idx}"))),
            }
            idx += 1;
        });
        if let Some(e) = error {
            return Err(e);
        }
        if idx != state.moments.len() {
            return Err(AdamStateError(format!(
                "snapshot has {} moments for {idx} parameters",
                state.moments.len()
            )));
        }
        self.step = state.step;
        self.state = keyed.into_iter().collect();
        Ok(())
    }

    /// Applies one update to every parameter of `module` using its
    /// accumulated gradients, then leaves the gradients untouched (callers
    /// zero them at the start of the next accumulation window).
    pub fn step(&mut self, module: &mut dyn Module, lr: f32) {
        self.step += 1;
        let t = self.step as f32;
        let bc1 = 1.0 - self.beta1.powf(t);
        let bc2 = 1.0 - self.beta2.powf(t);
        let (beta1, beta2, eps, wd) = (self.beta1, self.beta2, self.eps, self.weight_decay);
        let state = &mut self.state;

        module.visit_mut(&mut |p| {
            let (rows, cols) = p.value.shape();
            let moments = state.entry(p.id()).or_insert_with(|| Moments {
                m: Tensor::zeros(rows, cols),
                v: Tensor::zeros(rows, cols),
            });
            debug_assert_eq!(moments.m.shape(), p.value.shape(), "optimizer state shape drift");

            let m = moments.m.data_mut();
            let v = moments.v.data_mut();
            let grad = p.grad.data();
            let value = p.value.data_mut();
            for i in 0..grad.len() {
                let gi = grad[i];
                m[i] = beta1 * m[i] + (1.0 - beta1) * gi;
                v[i] = beta2 * v[i] + (1.0 - beta2) * gi * gi;
                let mhat = m[i] / bc1;
                let vhat = v[i] / bc2;
                let mut update = mhat / (vhat.sqrt() + eps);
                if wd > 0.0 {
                    update += wd * value[i];
                }
                value[i] -= lr * update;
            }
        });
    }
}

impl Default for Adam {
    fn default() -> Self {
        Self::new()
    }
}

/// The paper's learning-rate schedule: linear warmup for the first epoch,
/// then linear decay to zero at `total_steps`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearSchedule {
    /// Peak learning rate reached at the end of warmup.
    pub base_lr: f32,
    /// Steps spent warming up (one epoch in the paper).
    pub warmup_steps: u64,
    /// Total optimization steps over the whole run.
    pub total_steps: u64,
}

impl LinearSchedule {
    /// Creates a schedule; `total_steps` is clamped to at least
    /// `warmup_steps + 1` so the decay phase is non-empty.
    pub fn new(base_lr: f32, warmup_steps: u64, total_steps: u64) -> Self {
        Self {
            base_lr,
            warmup_steps,
            total_steps: total_steps.max(warmup_steps + 1),
        }
    }

    /// Learning rate at `step` (0-based). Never NaN: a schedule whose decay
    /// phase is empty (possible through direct construction of the public
    /// fields, which bypasses the [`LinearSchedule::new`] clamp) reports a
    /// zero rate once warmup is over instead of dividing by zero.
    pub fn lr(&self, step: u64) -> f32 {
        if self.warmup_steps > 0 && step < self.warmup_steps {
            self.base_lr * (step + 1) as f32 / self.warmup_steps as f32
        } else {
            let decay_span = self.total_steps.saturating_sub(self.warmup_steps);
            if decay_span == 0 {
                return 0.0;
            }
            let remaining = self.total_steps.saturating_sub(step) as f32;
            self.base_lr * (remaining / decay_span as f32).clamp(0.0, 1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::Linear;
    use crate::param::{GraphStamp, Module};
    use emba_tensor::{Graph, Tensor};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn adam_descends_a_quadratic() {
        // Minimize ||W||^2 from a random start; Adam should cut the norm by
        // an order of magnitude in a few hundred steps.
        let mut rng = StdRng::seed_from_u64(0);
        let mut lin = Linear::new(3, 3, &mut rng);
        let start_norm = lin.weight.value.norm();
        let mut adam = Adam::new();
        for _ in 0..300 {
            lin.zero_grads();
            let g = Graph::new();
            let stamp = GraphStamp::next();
            let w = lin.weight.bind(&g, stamp);
            let sq = g.mul(w, w);
            let loss = g.sum_all(sq);
            let grads = g.backward(loss);
            lin.accumulate_gradients(&grads);
            adam.step(&mut lin, 1e-2);
        }
        assert!(lin.weight.value.norm() < start_norm / 10.0);
        assert_eq!(adam.steps(), 300);
    }

    #[test]
    fn adam_fits_a_linear_map() {
        // Learn y = x * T for a fixed target T from squared error.
        let mut rng = StdRng::seed_from_u64(1);
        let target = Tensor::from_rows(&[&[1.0, -2.0], &[0.5, 3.0]]);
        let mut lin = Linear::new(2, 2, &mut rng);
        let mut adam = Adam::new();
        let xs = Tensor::rand_normal(16, 2, 0.0, 1.0, &mut rng);
        let ys = xs.matmul(&target);
        for _ in 0..400 {
            lin.zero_grads();
            let g = Graph::new();
            let stamp = GraphStamp::next();
            let x = g.leaf(xs.clone());
            let pred = lin.forward(&g, stamp, x);
            let diff = g.sub(pred, g.leaf(ys.clone()));
            let sq = g.mul(diff, diff);
            let loss = g.mean_all(sq);
            let grads = g.backward(loss);
            lin.accumulate_gradients(&grads);
            adam.step(&mut lin, 5e-2);
        }
        let err = lin.weight.value.sub(&target).norm();
        assert!(err < 0.1, "weight error {err} too large");
    }

    #[test]
    fn weight_decay_shrinks_untouched_weights() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut lin = Linear::new(2, 2, &mut rng);
        lin.weight.value = Tensor::ones(2, 2);
        let before = lin.weight.value.norm();
        let mut adam = Adam::new().with_weight_decay(0.1);
        // Zero gradients: only decay acts.
        lin.zero_grads();
        for _ in 0..10 {
            adam.step(&mut lin, 1e-2);
        }
        assert!(lin.weight.value.norm() < before);
    }

    /// One deterministic training step: squared-error fit of a fixed target.
    fn descend(lin: &mut Linear, adam: &mut Adam, lr: f32) {
        lin.zero_grads();
        let g = Graph::new();
        let stamp = GraphStamp::next();
        let w = lin.weight.bind(&g, stamp);
        let sq = g.mul(w, w);
        let loss = g.sum_all(sq);
        let grads = g.backward(loss);
        lin.accumulate_gradients(&grads);
        adam.step(lin, lr);
    }

    #[test]
    fn state_roundtrip_reproduces_next_step_bit_exactly() {
        // Train a module for a while, snapshot optimizer + params, keep
        // training the original; a twin restored from the snapshot must
        // produce bit-identical parameters at every subsequent step.
        let mut rng = StdRng::seed_from_u64(9);
        let mut lin = Linear::new(4, 3, &mut rng);
        let mut adam = Adam::new();
        for _ in 0..25 {
            descend(&mut lin, &mut adam, 3e-3);
        }
        let params = lin.state();
        let snapshot = adam.state(&lin);
        assert_eq!(snapshot.step, 25);
        assert_eq!(snapshot.moments.len(), 2, "weight + bias");

        // Serialize through JSON: the durable store's exact path.
        let json = serde_json::to_string(&snapshot).unwrap();
        let restored: AdamState = serde_json::from_str(&json).unwrap();

        let mut rng2 = StdRng::seed_from_u64(1234);
        let mut twin = Linear::new(4, 3, &mut rng2); // different init, overwritten
        twin.load_state(&params);
        let mut twin_adam = Adam::new();
        twin_adam.load_state(&twin, &restored).unwrap();
        assert_eq!(twin_adam.steps(), 25);

        for step in 0..10 {
            descend(&mut lin, &mut adam, 3e-3);
            descend(&mut twin, &mut twin_adam, 3e-3);
            assert_eq!(
                lin.weight.value.data(),
                twin.weight.value.data(),
                "divergence at resumed step {step}"
            );
            assert_eq!(lin.bias.value.data(), twin.bias.value.data());
        }
    }

    #[test]
    fn unstepped_parameters_snapshot_as_zero_moments() {
        let mut rng = StdRng::seed_from_u64(3);
        let lin = Linear::new(2, 2, &mut rng);
        let adam = Adam::new();
        let s = adam.state(&lin);
        assert_eq!(s.step, 0);
        assert!(s.moments.iter().all(|mo| {
            mo.m.data().iter().all(|&x| x == 0.0) && mo.v.data().iter().all(|&x| x == 0.0)
        }));
    }

    #[test]
    fn load_state_rejects_mismatched_snapshots() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut lin = Linear::new(2, 2, &mut rng);
        let mut adam = Adam::new();
        adam.step(&mut lin, 1e-3);

        // Too short.
        let mut short = adam.state(&lin);
        short.moments.pop();
        assert!(adam.load_state(&lin, &short).is_err());

        // Too long.
        let mut long = adam.state(&lin);
        long.moments.push(MomentPair { m: Tensor::zeros(1, 1), v: Tensor::zeros(1, 1) });
        assert!(adam.load_state(&lin, &long).is_err());

        // Wrong shape.
        let mut wrong = adam.state(&lin);
        wrong.moments[0].m = Tensor::zeros(3, 3);
        let err = adam.load_state(&lin, &wrong).unwrap_err();
        assert!(err.to_string().contains("optimizer state mismatch"));

        // The optimizer still works after rejected loads.
        adam.step(&mut lin, 1e-3);
        assert_eq!(adam.steps(), 2);
    }

    #[test]
    fn schedule_warms_up_then_decays() {
        let s = LinearSchedule::new(1e-3, 10, 100);
        assert!(s.lr(0) < s.lr(9));
        assert!((s.lr(9) - 1e-3).abs() < 1e-9);
        assert!(s.lr(50) < s.lr(10));
        assert!(s.lr(99) > 0.0);
        assert_eq!(s.lr(100), 0.0);
        assert_eq!(s.lr(200), 0.0);
    }

    #[test]
    fn schedule_without_warmup_starts_at_base() {
        let s = LinearSchedule::new(2e-4, 0, 50);
        assert!((s.lr(0) - 2e-4).abs() < 1e-9);
    }

    #[test]
    fn direct_construction_with_empty_decay_span_never_yields_nan() {
        // Public fields allow bypassing `new()`'s clamp; before the lr()
        // guard this divided zero by zero past warmup and fed NaN to Adam.
        let s = LinearSchedule {
            base_lr: 1e-3,
            warmup_steps: 10,
            total_steps: 10,
        };
        for step in [0, 5, 9, 10, 11, 1000] {
            assert!(s.lr(step).is_finite(), "lr({step}) = {}", s.lr(step));
        }
        // Warmup still ramps; the exhausted decay phase pins the rate to 0.
        assert!(s.lr(0) > 0.0);
        assert_eq!(s.lr(10), 0.0);
        assert_eq!(s.lr(1000), 0.0);
    }

    #[test]
    fn zero_step_schedule_is_all_zero() {
        let s = LinearSchedule {
            base_lr: 1.0,
            warmup_steps: 0,
            total_steps: 0,
        };
        assert_eq!(s.lr(0), 0.0);
        assert_eq!(s.lr(7), 0.0);
    }
}
