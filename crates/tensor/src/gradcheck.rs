//! Finite-difference gradient checking.
//!
//! Used by the property-test suite to validate every analytic gradient in
//! [`crate::Graph`] against central differences. Exposed publicly so
//! downstream crates (the nn layers, the AOA module) can gradient-check
//! their own composite operations.

use crate::{Gradients, Graph, Tensor, Var};

/// Builds a scalar loss from leaf variables. Called repeatedly by
/// [`check_gradients`], so it must be deterministic in its inputs.
pub trait LossFn: Fn(&Graph, &[Var]) -> Var {}
impl<F: Fn(&Graph, &[Var]) -> Var> LossFn for F {}

/// Result of a single gradient comparison that exceeded tolerance.
#[derive(Debug, Clone, PartialEq)]
pub struct GradMismatch {
    /// Which input tensor disagreed.
    pub input: usize,
    /// Flat element index within that tensor.
    pub element: usize,
    /// Analytic gradient from the tape.
    pub analytic: f32,
    /// Central-difference estimate.
    pub numeric: f32,
}

impl std::fmt::Display for GradMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "input {} element {}: analytic {} vs numeric {}",
            self.input, self.element, self.analytic, self.numeric
        )
    }
}

/// Evaluates the loss once, returning `(loss value, gradients, vars)`.
fn evaluate(inputs: &[Tensor], f: &impl LossFn) -> (f32, Gradients, Vec<Var>) {
    let g = Graph::new();
    let vars: Vec<Var> = inputs.iter().map(|t| g.leaf(t.clone())).collect();
    let loss = f(&g, &vars);
    let value = g.value(loss).item();
    let grads = g.backward(loss);
    (value, grads, vars)
}

/// Compares the tape's analytic gradients against central finite differences.
///
/// For every element `x` of every input, the numeric estimate is
/// `(f(x + eps) - f(x - eps)) / (2 eps)`. The comparison passes when
/// `|analytic - numeric| <= tol * (1 + |analytic| + |numeric|)`.
///
/// Returns the first mismatch found, or `Ok(())`.
pub fn check_gradients(
    inputs: &[Tensor],
    f: impl LossFn,
    eps: f32,
    tol: f32,
) -> Result<(), GradMismatch> {
    let (_, grads, vars) = evaluate(inputs, &f);

    for (i, input) in inputs.iter().enumerate() {
        let analytic = grads.get(vars[i]);
        for e in 0..input.len() {
            let a = analytic.map_or(0.0, |t| t.data()[e]);

            let mut plus = inputs.to_vec();
            let mut minus = inputs.to_vec();
            plus[i].data_mut()[e] += eps;
            minus[i].data_mut()[e] -= eps;

            let (fp, _, _) = evaluate(&plus, &f);
            let (fm, _, _) = evaluate(&minus, &f);
            let n = (fp - fm) / (2.0 * eps);

            if (a - n).abs() > tol * (1.0 + a.abs() + n.abs()) {
                return Err(GradMismatch {
                    input: i,
                    element: e,
                    analytic: a,
                    numeric: n,
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passes_for_correct_gradient() {
        let x = Tensor::from_rows(&[&[0.5, -0.3], &[1.2, 0.1]]);
        check_gradients(&[x], |g, vars| {
            let y = g.tanh(vars[0]);
            g.sum_all(y)
        }, 1e-3, 1e-2)
        .unwrap();
    }

    #[test]
    fn detects_wrong_gradient() {
        // scale's forward doubles but we compare against a loss whose true
        // derivative is 2; sabotage by building sum(x*2) forward but checking
        // against sum(x^2)-style numeric... instead simply verify the checker
        // flags an intentionally inconsistent function: the loss reads the
        // input through a detached leaf so the analytic gradient is zero while
        // the numeric one is not.
        let x = Tensor::row(&[1.0, 2.0]);
        let result = check_gradients(&[x], |g, vars| {
            // Analytic path: gradient flows only through `vars[0]` once, but
            // we add a term computed from a *fresh leaf* with the same value,
            // which the tape treats as a constant. Numerically perturbing the
            // input changes both terms, so analytic (1.0) != numeric (2.0).
            let detached = g.leaf(g.value(vars[0]));
            let s = g.add(vars[0], detached);
            g.sum_all(s)
        }, 1e-3, 1e-3);
        assert!(result.is_err());
        let err = result.unwrap_err();
        assert!(err.to_string().contains("analytic"));
    }
}
