//! Dense f32 tensors and reverse-mode automatic differentiation.
//!
//! This crate is the numerical substrate for the EMBA entity-matching
//! reproduction. It provides:
//!
//! * [`Tensor`] — an immutable, reference-counted, row-major dense matrix of
//!   `f32` values with the raw linear-algebra kernels (matmul, softmax,
//!   layer-norm, ...) used by the neural-network layers.
//! * [`Graph`] — a single-use autodiff tape. Operations are recorded during
//!   the forward pass and [`Graph::backward`] replays them in reverse to
//!   produce gradients for every recorded node.
//! * [`gradcheck`] — finite-difference gradient checking used by the property
//!   tests to validate every analytic gradient in the tape.
//! * [`guard`] — an opt-in non-finite guard that scans every recorded op
//!   output for NaN/Inf and reports the offending op by name.
//! * [`prof`] — an opt-in op-level profiler that attributes self wall-time,
//!   output bytes, and estimated FLOPs to every forward and backward tape op
//!   under a hierarchical phase-scope stack.
//! * [`backend`] — the `Backend` trait seam between the tape and kernel
//!   execution, with a thread-installable post-training int8 backend
//!   ([`quant`]) and cached CPU-feature dispatch to explicit `std::arch`
//!   micro-kernels ([`simd`]).
//!
//! # Design notes
//!
//! The engine is deliberately small and single-threaded: the reproduction
//! trains miniature BERT encoders (a few layers, ≤256 dims), and a tape of
//! boxed backward closures keeps the op set trivially extensible. Tensors
//! share their buffer through an `Arc`, so cloning a tensor (e.g. capturing
//! activations inside a backward closure) is O(1); mutation copies-on-write.
//! Matrix products route through [`kernels`] — cache-blocked, panel-packed
//! GEMM with a register-tiled branch-free micro-kernel — and hot-path
//! allocations draw from the thread-local scratch [`pool`], which `Graph` and
//! `Gradients` refill via their `recycle` methods at the end of each step.
//!
//! # Example
//!
//! ```
//! use emba_tensor::{Graph, Tensor};
//!
//! let g = Graph::new();
//! let x = g.leaf(Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]));
//! let w = g.leaf(Tensor::from_rows(&[&[0.5], &[-0.5]]));
//! let y = g.matmul(x, w);          // [2,1]
//! let loss = g.sum_all(y);         // scalar
//! let grads = g.backward(loss);
//! let dw = grads.get(w).unwrap();
//! assert_eq!(dw.shape(), (2, 1));
//! assert_eq!(dw.data(), &[4.0, 6.0]); // column sums of x
//! ```

pub mod backend;
pub mod gradcheck;
mod graph;
mod groups;
pub mod guard;
pub mod kernels;
pub mod pool;
pub mod prof;
pub mod quant;
pub mod simd;
mod tensor;

pub use backend::BackendKind;
pub use graph::{GradSink, Gradients, Graph, Var};
pub use groups::RowGroups;
pub use quant::QuantizedMatrix;
pub use tensor::Tensor;

/// Numerical epsilon used by layer normalization and other
/// divide-by-variance operations.
pub const NORM_EPS: f32 = 1e-5;
