//! Cache-blocked, register-tiled GEMM kernels and fused softmax primitives.
//!
//! All three matmul variants the engine needs — `A·B`, `A·Bᵀ`, `Aᵀ·B` — are
//! served by one blocked implementation parameterized over operand strides:
//! the logical element `A(i, p)` lives at `a[i * a_rs + p * a_cs]`, so a
//! transposed operand is just a different `(rs, cs)` pair and never has to be
//! materialized. The implementation follows the classic BLIS/GotoBLAS
//! decomposition:
//!
//! * Loop over `NC`-wide column panels of B, `KC`-deep slices of the shared
//!   dimension, and `MC`-tall row panels of A, sized so the packed panels
//!   stay resident in cache across the inner loops.
//! * Pack each B panel into `NR`-wide column strips and each A panel into
//!   `MR`-tall row strips, padding edge strips with zeros. Packing makes the
//!   micro-kernel's accesses contiguous and unit-stride regardless of the
//!   source layout, which is what lets one kernel serve nn/nt/tn.
//! * A register-tiled `MR×NR` micro-kernel (4×16 — 64 f32 accumulators plus
//!   one broadcast and one B-row fit the 16 vector registers of AVX2-class
//!   hardware) walks the shared dimension with fully unrolled, branch-free
//!   multiply-adds that the compiler auto-vectorizes.
//!
//! Small products fall through to simple branchless loops: for a handful of
//! rows the packing traffic costs more than it saves.
//!
//! Scratch buffers for the packed panels come from the thread-local
//! [`pool`](crate::pool), so steady-state training performs no heap
//! allocation here at all.

use crate::pool;
use crate::simd;

/// Rows per micro-kernel tile.
pub const MR: usize = 4;
/// Columns per micro-kernel tile.
pub const NR: usize = 16;
/// Rows of A packed per panel (multiple of `MR`).
const MC: usize = 64;
/// Depth of the shared dimension packed per panel.
const KC: usize = 256;
/// Columns of B packed per panel (multiple of `NR`).
const NC: usize = 512;

/// Products below this many multiply-adds use the simple loops; the packed
/// path only pays off once panel reuse amortizes the packing passes.
const SMALL_MULADDS: usize = 32 * 32 * 32;

// ----- public entry points ------------------------------------------------

/// `out = A·B` for row-major `A: [m,k]`, `B: [k,n]`, `out: [m,n]`.
///
/// `out` is overwritten. Slices must have exactly the implied lengths.
pub fn gemm_nn(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    if m * n * k < SMALL_MULADDS {
        out.fill(0.0);
        for i in 0..m {
            let a_row = &a[i * k..(i + 1) * k];
            let out_row = &mut out[i * n..(i + 1) * n];
            for (p, &aip) in a_row.iter().enumerate() {
                let b_row = &b[p * n..(p + 1) * n];
                for (o, &bv) in out_row.iter_mut().zip(b_row) {
                    *o += aip * bv;
                }
            }
        }
    } else {
        gemm_blocked(m, k, n, a, k, 1, b, n, 1, out);
    }
}

/// `out = A·Bᵀ` for row-major `A: [m,k]`, `B: [n,k]`, `out: [m,n]`.
pub fn gemm_nt(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(out.len(), m * n);
    if m * n * k < SMALL_MULADDS {
        for i in 0..m {
            let a_row = &a[i * k..(i + 1) * k];
            let out_row = &mut out[i * n..(i + 1) * n];
            for (j, o) in out_row.iter_mut().enumerate() {
                let b_row = &b[j * k..(j + 1) * k];
                *o = dot(a_row, b_row);
            }
        }
    } else {
        gemm_blocked(m, k, n, a, k, 1, b, 1, k, out);
    }
}

/// `out = Aᵀ·B` for row-major `A: [k,m]`, `B: [k,n]`, `out: [m,n]`.
pub fn gemm_tn(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    debug_assert_eq!(a.len(), k * m);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    if m * n * k < SMALL_MULADDS {
        out.fill(0.0);
        for p in 0..k {
            let a_row = &a[p * m..(p + 1) * m];
            let b_row = &b[p * n..(p + 1) * n];
            for (i, &aip) in a_row.iter().enumerate() {
                let out_row = &mut out[i * n..(i + 1) * n];
                for (o, &bv) in out_row.iter_mut().zip(b_row) {
                    *o += aip * bv;
                }
            }
        }
    } else {
        gemm_blocked(m, k, n, a, 1, m, b, n, 1, out);
    }
}

/// Branch-free dot product over unrolled 8-lane chunks.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    const LANES: usize = 8;
    let mut acc = [0.0f32; LANES];
    let chunks = a.len() / LANES;
    for c in 0..chunks {
        let av = &a[c * LANES..(c + 1) * LANES];
        let bv = &b[c * LANES..(c + 1) * LANES];
        for l in 0..LANES {
            acc[l] += av[l] * bv[l];
        }
    }
    let mut sum: f32 = acc.iter().sum();
    for i in chunks * LANES..a.len() {
        sum += a[i] * b[i];
    }
    sum
}

// ----- blocked implementation ---------------------------------------------

/// Blocked GEMM over strided operands: `A(i, p) = a[i*a_rs + p*a_cs]`,
/// `B(p, j) = b[p*b_rs + j*b_cs]`, accumulating into row-major `out`.
#[allow(clippy::too_many_arguments)]
fn gemm_blocked(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    a_rs: usize,
    a_cs: usize,
    b: &[f32],
    b_rs: usize,
    b_cs: usize,
    out: &mut [f32],
) {
    out.fill(0.0);
    let mut packed_a = pool::take_uninit(MC * KC);
    let mut packed_b = pool::take_uninit(KC * NC);
    // One cached-atomic read per GEMM, not per tile; `simd::level()` honors
    // the EMBA_FORCE_SCALAR override so CI can pin the autovectorized path.
    let use_simd = simd::level() >= simd::Level::Avx2;

    for jc in (0..n).step_by(NC) {
        let nc = (n - jc).min(NC);
        let nc_strips = nc.div_ceil(NR);
        for pc in (0..k).step_by(KC) {
            let kc = (k - pc).min(KC);
            pack_b(&mut packed_b, b, b_rs, b_cs, pc, kc, jc, nc);
            for ic in (0..m).step_by(MC) {
                let mc = (m - ic).min(MC);
                let mc_strips = mc.div_ceil(MR);
                pack_a(&mut packed_a, a, a_rs, a_cs, ic, mc, pc, kc);

                for jt in 0..nc_strips {
                    let b_panel = &packed_b[jt * kc * NR..(jt + 1) * kc * NR];
                    let j_lim = (nc - jt * NR).min(NR);
                    for it in 0..mc_strips {
                        let a_panel = &packed_a[it * kc * MR..(it + 1) * kc * MR];
                        let i_lim = (mc - it * MR).min(MR);

                        let mut acc = [[0.0f32; NR]; MR];
                        micro_kernel_dispatch(use_simd, kc, a_panel, b_panel, &mut acc);

                        let row0 = ic + it * MR;
                        let col0 = jc + jt * NR;
                        for r in 0..i_lim {
                            let out_row = &mut out[(row0 + r) * n + col0..(row0 + r) * n + col0 + j_lim];
                            for (o, &v) in out_row.iter_mut().zip(&acc[r][..j_lim]) {
                                *o += v;
                            }
                        }
                    }
                }
            }
        }
    }

    pool::put(packed_a);
    pool::put(packed_b);
}

/// Routes a packed-panel tile either to the explicit AVX2+FMA micro-kernel
/// or to the portable autovectorized one. `use_simd` is hoisted to one
/// decision per GEMM call.
#[inline(always)]
fn micro_kernel_dispatch(use_simd: bool, kc: usize, a: &[f32], b: &[f32], acc: &mut [[f32; NR]; MR]) {
    #[cfg(target_arch = "x86_64")]
    if use_simd {
        // SAFETY: `use_simd` is only true when `simd::level()` detected
        // AVX2+FMA on this CPU.
        unsafe { simd::micro_kernel_f32_avx2(kc, a, b, acc) };
        return;
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = use_simd;
    micro_kernel(kc, a, b, acc);
}

/// The register-tiled inner kernel: `acc[r][c] += Σ_p a(r, p) · b(p, c)` over
/// packed panels (`a`: depth-major strips of `MR`, `b`: depth-major strips of
/// `NR`). Fixed tile sizes let the compiler unroll and vectorize the whole
/// body; there are no branches in the loop.
#[inline(always)]
fn micro_kernel(kc: usize, a: &[f32], b: &[f32], acc: &mut [[f32; NR]; MR]) {
    debug_assert!(a.len() >= kc * MR);
    debug_assert!(b.len() >= kc * NR);
    for p in 0..kc {
        let ap: &[f32; MR] = a[p * MR..p * MR + MR].try_into().unwrap();
        let bp: &[f32; NR] = b[p * NR..p * NR + NR].try_into().unwrap();
        for r in 0..MR {
            let arv = ap[r];
            let row = &mut acc[r];
            for c in 0..NR {
                row[c] += arv * bp[c];
            }
        }
    }
}

/// Packs an `mc × kc` panel of A into `MR`-tall, depth-major strips:
/// `panel[s*MR*kc + p*MR + r] = A(i0 + s*MR + r, p0 + p)`, zero-padded when
/// the last strip overhangs `mc`.
#[allow(clippy::too_many_arguments)]
fn pack_a(panel: &mut [f32], a: &[f32], rs: usize, cs: usize, i0: usize, mc: usize, p0: usize, kc: usize) {
    let full = mc / MR;
    for s in 0..full {
        let base = s * MR * kc;
        for p in 0..kc {
            let dst = &mut panel[base + p * MR..base + (p + 1) * MR];
            let src = (i0 + s * MR) * rs + (p0 + p) * cs;
            for (r, d) in dst.iter_mut().enumerate() {
                *d = a[src + r * rs];
            }
        }
    }
    if !mc.is_multiple_of(MR) {
        let s = full;
        let rem = mc - s * MR;
        let base = s * MR * kc;
        for p in 0..kc {
            let dst = &mut panel[base + p * MR..base + (p + 1) * MR];
            let src = (i0 + s * MR) * rs + (p0 + p) * cs;
            for (r, d) in dst.iter_mut().enumerate() {
                *d = if r < rem { a[src + r * rs] } else { 0.0 };
            }
        }
    }
}

/// Packs a `kc × nc` panel of B into `NR`-wide, depth-major strips:
/// `panel[t*kc*NR + p*NR + c] = B(p0 + p, j0 + t*NR + c)`, zero-padded when
/// the last strip overhangs `nc`. Unit column stride (the nn/tn case) copies
/// whole rows with `copy_from_slice`.
#[allow(clippy::too_many_arguments)]
fn pack_b(panel: &mut [f32], b: &[f32], rs: usize, cs: usize, p0: usize, kc: usize, j0: usize, nc: usize) {
    let strips = nc.div_ceil(NR);
    for t in 0..strips {
        let base = t * kc * NR;
        let col = j0 + t * NR;
        let width = (nc - t * NR).min(NR);
        for p in 0..kc {
            let dst = &mut panel[base + p * NR..base + (p + 1) * NR];
            let src = (p0 + p) * rs + col * cs;
            if cs == 1 {
                dst[..width].copy_from_slice(&b[src..src + width]);
            } else {
                for (c, d) in dst[..width].iter_mut().enumerate() {
                    *d = b[src + c * cs];
                }
            }
            dst[width..].fill(0.0);
        }
    }
}

// ----- fused softmax primitives -------------------------------------------

/// Numerically stable in-place softmax of one contiguous row, with the
/// attention scale `s` folded into the exponent (softmax(s·x)).
#[inline]
pub fn scaled_softmax_in_place(row: &mut [f32], s: f32) {
    let max = row.iter().map(|&x| x * s).fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0f32;
    for x in row.iter_mut() {
        *x = (*x * s - max).exp();
        sum += *x;
    }
    let inv = 1.0 / sum;
    for x in row.iter_mut() {
        *x *= inv;
    }
}

/// Jacobian-vector product of a row softmax, written into `dx` (a scratch
/// buffer of the same length): `dx = p ⊙ (g − rowdot(g, p)) · s`, where `s`
/// folds in the derivative of a pre-softmax scale.
pub fn softmax_rows_backward_scaled(rows: usize, cols: usize, g: &[f32], p: &[f32], s: f32, dx: &mut [f32]) {
    debug_assert_eq!(g.len(), rows * cols);
    debug_assert_eq!(p.len(), rows * cols);
    debug_assert_eq!(dx.len(), rows * cols);
    for r in 0..rows {
        let span = r * cols..(r + 1) * cols;
        let grow = &g[span.clone()];
        let prow = &p[span.clone()];
        let d = dot(grow, prow);
        for ((o, &gv), &pv) in dx[span].iter_mut().zip(grow).zip(prow) {
            *o = pv * (gv - d) * s;
        }
    }
}

/// Jacobian-vector product of a column softmax, written into `dx`:
/// `dx[r,c] = p[r,c] · (g[r,c] − Σ_r g[r,c]·p[r,c])`. One pass accumulates
/// the per-column dots into a pooled scratch row, a second pass writes `dx`;
/// no transposes are materialized.
pub fn softmax_cols_backward(rows: usize, cols: usize, g: &[f32], p: &[f32], dx: &mut [f32]) {
    debug_assert_eq!(g.len(), rows * cols);
    debug_assert_eq!(p.len(), rows * cols);
    debug_assert_eq!(dx.len(), rows * cols);
    let mut col_dots = pool::take(cols);
    for r in 0..rows {
        let span = r * cols..(r + 1) * cols;
        for ((d, &gv), &pv) in col_dots.iter_mut().zip(&g[span.clone()]).zip(&p[span]) {
            *d += gv * pv;
        }
    }
    for r in 0..rows {
        let span = r * cols..(r + 1) * cols;
        for (((o, &gv), &pv), &d) in dx[span.clone()]
            .iter_mut()
            .zip(&g[span.clone()])
            .zip(&p[span])
            .zip(col_dots.iter())
        {
            *o = pv * (gv - d);
        }
    }
    pool::put(col_dots);
}

// ----- seed kernels, retained for benchmarking ----------------------------
//
// Compiled only under `cfg(test)` or the `seed-bench` feature (enabled by
// emba-bench) so the hot path cannot reach them by accident.

/// The seed repository's `ikj` matmul, including its `aik == 0.0` skip
/// branch. Retained only so the benchmark suite can quantify the cost of
/// that branch against [`gemm_nn`]; not used by the engine.
#[cfg(any(test, feature = "seed-bench"))]
pub fn gemm_nn_seed_branchy(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    out.fill(0.0);
    for i in 0..m {
        let out_row = &mut out[i * n..(i + 1) * n];
        let a_row = &a[i * k..(i + 1) * k];
        for (kk, &aik) in a_row.iter().enumerate() {
            if aik == 0.0 {
                continue;
            }
            let b_row = &b[kk * n..(kk + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row.iter()) {
                *o += aik * bv;
            }
        }
    }
}

/// The seed repository's `Aᵀ·B` kernel with its `== 0.0` skip branch; see
/// [`gemm_nn_seed_branchy`].
#[cfg(any(test, feature = "seed-bench"))]
pub fn gemm_tn_seed_branchy(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    out.fill(0.0);
    for kk in 0..k {
        let a_row = &a[kk * m..(kk + 1) * m];
        let b_row = &b[kk * n..(kk + 1) * n];
        for (i, &aik) in a_row.iter().enumerate() {
            if aik == 0.0 {
                continue;
            }
            let out_row = &mut out[i * n..(i + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row.iter()) {
                *o += aik * bv;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn reference_nn(m: usize, k: usize, n: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut s = 0.0f64;
                for p in 0..k {
                    s += f64::from(a[i * k + p]) * f64::from(b[p * n + j]);
                }
                out[i * n + j] = s as f32;
            }
        }
        out
    }

    fn rand_vec(rng: &mut StdRng, len: usize) -> Vec<f32> {
        (0..len).map(|_| rng.gen_range(-1.0f32..1.0)).collect()
    }

    fn assert_close(actual: &[f32], expected: &[f32], tol: f32, ctx: &str) {
        for (i, (&x, &y)) in actual.iter().zip(expected).enumerate() {
            assert!(
                (x - y).abs() <= tol * (1.0 + y.abs()),
                "{ctx}: element {i}: {x} vs {y}"
            );
        }
    }

    #[test]
    fn blocked_nn_matches_reference_on_awkward_shapes() {
        let mut rng = StdRng::seed_from_u64(11);
        // Shapes straddling every blocking boundary: micro-tile edges,
        // panel edges, the small-product cutoff, and multi-panel sizes.
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 5, 7),
            (4, 16, 16),
            (33, 47, 65),
            (64, 256, 512),
            (65, 257, 513),
            (100, 37, 129),
            (128, 128, 128),
        ] {
            let a = rand_vec(&mut rng, m * k);
            let b = rand_vec(&mut rng, k * n);
            let expected = reference_nn(m, k, n, &a, &b);
            let mut out = vec![0.0f32; m * n];
            gemm_nn(m, k, n, &a, &b, &mut out);
            assert_close(&out, &expected, 1e-5, &format!("nn {m}x{k}x{n}"));
        }
    }

    #[test]
    fn blocked_nt_and_tn_match_reference() {
        let mut rng = StdRng::seed_from_u64(12);
        for &(m, k, n) in &[(3, 5, 7), (33, 47, 65), (65, 130, 129), (128, 32, 128)] {
            let a = rand_vec(&mut rng, m * k);
            let b = rand_vec(&mut rng, k * n);
            let expected = reference_nn(m, k, n, &a, &b);

            // nt: B stored transposed as [n, k].
            let mut bt = vec![0.0f32; n * k];
            for p in 0..k {
                for j in 0..n {
                    bt[j * k + p] = b[p * n + j];
                }
            }
            let mut out = vec![0.0f32; m * n];
            gemm_nt(m, k, n, &a, &bt, &mut out);
            assert_close(&out, &expected, 1e-5, &format!("nt {m}x{k}x{n}"));

            // tn: A stored transposed as [k, m].
            let mut at = vec![0.0f32; k * m];
            for i in 0..m {
                for p in 0..k {
                    at[p * m + i] = a[i * k + p];
                }
            }
            let mut out = vec![0.0f32; m * n];
            gemm_tn(m, k, n, &at, &b, &mut out);
            assert_close(&out, &expected, 1e-5, &format!("tn {m}x{k}x{n}"));
        }
    }

    #[test]
    fn seed_branchy_kernels_agree_with_blocked() {
        let mut rng = StdRng::seed_from_u64(13);
        let (m, k, n) = (65, 66, 67);
        let a = rand_vec(&mut rng, m * k);
        let b = rand_vec(&mut rng, k * n);
        let mut blocked = vec![0.0f32; m * n];
        let mut branchy = vec![0.0f32; m * n];
        gemm_nn(m, k, n, &a, &b, &mut blocked);
        gemm_nn_seed_branchy(m, k, n, &a, &b, &mut branchy);
        assert_close(&blocked, &branchy, 1e-5, "nn vs seed");

        let at: Vec<f32> = {
            let mut t = vec![0.0f32; k * m];
            for i in 0..m {
                for p in 0..k {
                    t[p * m + i] = a[i * k + p];
                }
            }
            t
        };
        gemm_tn(m, k, n, &at, &b, &mut blocked);
        gemm_tn_seed_branchy(m, k, n, &at, &b, &mut branchy);
        assert_close(&blocked, &branchy, 1e-5, "tn vs seed");
    }

    #[test]
    fn scaled_softmax_matches_two_step() {
        let mut rng = StdRng::seed_from_u64(14);
        let mut row = rand_vec(&mut rng, 37);
        let scale = 0.35;
        let mut expected: Vec<f32> = row.iter().map(|&x| x * scale).collect();
        let max = expected.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let sum: f32 = expected.iter().map(|&x| (x - max).exp()).sum();
        for e in &mut expected {
            *e = (*e - max).exp() / sum;
        }
        scaled_softmax_in_place(&mut row, scale);
        assert_close(&row, &expected, 1e-6, "scaled softmax");
        assert!((row.iter().sum::<f32>() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn cols_backward_matches_transposed_rows_backward() {
        let mut rng = StdRng::seed_from_u64(16);
        let (rows, cols) = (9, 13);
        let g = rand_vec(&mut rng, rows * cols);
        let p = rand_vec(&mut rng, rows * cols);
        let mut dx = vec![0.0f32; rows * cols];
        softmax_cols_backward(rows, cols, &g, &p, &mut dx);

        // Reference: transpose, apply the row JVP, transpose back.
        let t = |x: &[f32]| -> Vec<f32> {
            let mut o = vec![0.0f32; rows * cols];
            for r in 0..rows {
                for c in 0..cols {
                    o[c * rows + r] = x[r * cols + c];
                }
            }
            o
        };
        let mut dt = vec![0.0f32; rows * cols];
        softmax_rows_backward_scaled(cols, rows, &t(&g), &t(&p), 1.0, &mut dt);
        let mut expected = vec![0.0f32; rows * cols];
        for c in 0..cols {
            for r in 0..rows {
                expected[r * cols + c] = dt[c * rows + r];
            }
        }
        assert_close(&dx, &expected, 1e-5, "cols backward");
    }

    #[test]
    fn dot_matches_naive() {
        let mut rng = StdRng::seed_from_u64(15);
        for len in [0, 1, 7, 8, 9, 63, 64, 100] {
            let a = rand_vec(&mut rng, len);
            let b = rand_vec(&mut rng, len);
            let naive: f32 = a.iter().zip(&b).map(|(&x, &y)| x * y).sum();
            assert!((dot(&a, &b) - naive).abs() < 1e-4, "len {len}");
        }
    }
}
