//! The `Backend` trait seam: tape/graph structure on one side, kernel
//! execution on the other.
//!
//! The tape records *what* to compute; a [`Backend`] decides *how*. The
//! default [`F32Backend`] routes every GEMM to the blocked f32 kernels in
//! [`crate::kernels`] (which themselves dispatch between the autovectorized
//! and explicit-SIMD micro-kernels via [`crate::simd::level`]). The
//! [`Int8Backend`] additionally answers `quantized() == true`, which makes
//! `emba-nn`'s `Linear` layers emit the inference-only `linear_q8` tape op
//! executing the int8 GEMM path in [`crate::quant`].
//!
//! Backends are installed per thread with [`install`], which returns an RAII
//! guard restoring the previous backend on drop — serve and catalog scoring
//! wrap each request batch in a guard so training code on the same thread is
//! never affected.
//!
//! **Contract:** the int8 backend is inference-only. `linear_q8` records no
//! backward closure, so a backward sweep through a quantized op is a
//! no-gradient no-op; training must run under [`F32Backend`] (the default —
//! nothing in the training path ever installs `Int8`).

use std::cell::Cell;

use crate::kernels;
use crate::quant::{self, QuantizedMatrix};
use crate::simd;
use crate::tensor::Tensor;

/// Kernel-execution strategy behind the tape.
pub trait Backend {
    /// Stable human-readable name for reports and snapshots.
    fn name(&self) -> &'static str;

    /// Whether `Linear` layers should emit quantized (`linear_q8`) tape ops.
    fn quantized(&self) -> bool {
        false
    }

    /// `out = a (m,k) @ b (k,n)`, both row-major.
    fn gemm_nn(&self, m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
        kernels::gemm_nn(m, k, n, a, b, out);
    }

    /// `out = a (m,k) @ b^T` with `b` stored `(n,k)` row-major.
    fn gemm_nt(&self, m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
        kernels::gemm_nt(m, k, n, a, b, out);
    }

    /// `out = a^T @ b` with `a` stored `(k,m)` row-major.
    fn gemm_tn(&self, m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
        kernels::gemm_tn(m, k, n, a, b, out);
    }

    /// Quantized affine forward (optionally fused GELU); only reached when
    /// `quantized()` is true.
    fn linear_q8(&self, x: &Tensor, w: &QuantizedMatrix, bias: &Tensor, gelu: bool) -> Tensor {
        quant::linear_q8_forward(x, w, bias, gelu)
    }
}

/// Full-precision backend: the default, and the only one valid for training.
pub struct F32Backend;

impl Backend for F32Backend {
    fn name(&self) -> &'static str {
        "f32"
    }
}

/// Post-training int8 backend: weight GEMMs run the quantized GEMM path;
/// activation-by-activation GEMMs (attention scores/mix) stay f32.
pub struct Int8Backend;

impl Backend for Int8Backend {
    fn name(&self) -> &'static str {
        match simd::level() {
            simd::Level::Scalar => "int8-scalar",
            simd::Level::Avx2 => "int8-avx2",
            simd::Level::Avx2Vnni => "int8-avx2-vnni",
        }
    }

    fn quantized(&self) -> bool {
        true
    }
}

/// Which backend to install — the serializable config-facing handle.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum BackendKind {
    /// Full-precision f32 kernels (default; required for training).
    #[default]
    F32,
    /// Post-training int8 weights with SIMD GEMM (inference only).
    Int8,
}

impl BackendKind {
    /// The backend instance this kind denotes.
    pub fn backend(self) -> &'static dyn Backend {
        match self {
            BackendKind::F32 => &F32Backend,
            BackendKind::Int8 => &Int8Backend,
        }
    }

    /// Stable label (the int8 label names the SIMD tier actually in use).
    pub fn label(self) -> &'static str {
        self.backend().name()
    }

    /// Parse a config/CLI name (`"f32"` or `"int8"`).
    pub fn from_name(name: &str) -> Option<BackendKind> {
        match name.trim().to_ascii_lowercase().as_str() {
            "f32" | "float" | "full" => Some(BackendKind::F32),
            "int8" | "i8" | "quant" | "quantized" => Some(BackendKind::Int8),
            _ => None,
        }
    }
}

thread_local! {
    static CURRENT: Cell<BackendKind> = const { Cell::new(BackendKind::F32) };
}

/// RAII guard restoring the previously installed backend on drop.
pub struct BackendGuard {
    prev: BackendKind,
}

impl Drop for BackendGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| c.set(self.prev));
    }
}

/// Install `kind` as this thread's backend until the guard drops.
#[must_use = "the backend is uninstalled when the guard drops"]
pub fn install(kind: BackendKind) -> BackendGuard {
    let prev = CURRENT.with(|c| c.replace(kind));
    BackendGuard { prev }
}

/// The kind currently installed on this thread.
pub fn kind() -> BackendKind {
    CURRENT.with(|c| c.get())
}

/// The backend currently installed on this thread.
pub fn current() -> &'static dyn Backend {
    kind().backend()
}

/// Whether the current backend wants quantized linear ops.
pub fn quantized() -> bool {
    current().quantized()
}

/// Name of the current backend (for profiler/metrics attribution).
pub fn name() -> &'static str {
    current().name()
}

/// Dispatch `gemm_nn` through the installed backend.
pub fn gemm_nn(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    current().gemm_nn(m, k, n, a, b, out);
}

/// Dispatch `gemm_nt` through the installed backend.
pub fn gemm_nt(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    current().gemm_nt(m, k, n, a, b, out);
}

/// Dispatch `gemm_tn` through the installed backend.
pub fn gemm_tn(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    current().gemm_tn(m, k, n, a, b, out);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn install_is_scoped_and_nested() {
        assert_eq!(kind(), BackendKind::F32);
        {
            let _g = install(BackendKind::Int8);
            assert_eq!(kind(), BackendKind::Int8);
            assert!(quantized());
            {
                let _g2 = install(BackendKind::F32);
                assert_eq!(kind(), BackendKind::F32);
            }
            assert_eq!(kind(), BackendKind::Int8);
        }
        assert_eq!(kind(), BackendKind::F32);
        assert!(!quantized());
    }

    #[test]
    fn kind_round_trips_names() {
        assert_eq!(BackendKind::from_name("f32"), Some(BackendKind::F32));
        assert_eq!(BackendKind::from_name("Int8"), Some(BackendKind::Int8));
        assert_eq!(BackendKind::from_name("tpu"), None);
        assert_eq!(BackendKind::F32.label(), "f32");
        assert!(BackendKind::Int8.label().starts_with("int8"));
    }
}
