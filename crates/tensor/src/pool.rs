//! Thread-local scratch-buffer pool.
//!
//! Training builds one autodiff tape per example, so the same tensor shapes
//! are allocated and dropped thousands of times per epoch. This pool lets the
//! hot path hand freed `Vec<f32>` buffers back for reuse instead of returning
//! them to the allocator: [`take`] pops a buffer of the exact requested
//! length (zero-filled, matching `vec![0.0; len]` semantics) and [`put`]
//! returns one. Buckets are keyed by length because the workload's shapes
//! recur exactly — model dimensions are fixed per run — which makes exact
//! keying hit nearly always while keeping lookup trivial.
//!
//! The pool is thread-local: the engine is single-threaded per training run,
//! and thread-locals avoid both locking and cross-thread buffer migration.
//! Resident bytes are capped; beyond the cap, returned buffers are simply
//! dropped.
//!
//! Lifetime rules (see DESIGN.md "Kernel layer"):
//!
//! * Anyone may call [`take`]; the buffer is owned by the caller like any Vec.
//! * Buffers return to the pool only through explicit recycle points —
//!   `Tensor::recycle`, `Graph::recycle`, `Gradients::recycle` — which use
//!   `Arc::try_unwrap`, so a buffer still shared (e.g. a checkpointed value)
//!   is never recycled out from under a holder.

use std::cell::RefCell;
use std::collections::HashMap;

/// Hard cap on pooled floats per thread (64 Mi floats = 256 MiB).
const MAX_POOLED_FLOATS: usize = 64 << 20;

/// Largest bucket worth keeping; enormous one-off buffers are dropped.
const MAX_BUFFER_FLOATS: usize = 16 << 20;

/// Counters describing pool effectiveness.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// `take` calls served from the pool.
    pub hits: u64,
    /// `take` calls that had to allocate.
    pub misses: u64,
    /// Buffers accepted back by `put`.
    pub recycled: u64,
    /// Buffers rejected by `put` (cap exceeded or oversized).
    pub dropped: u64,
    /// Floats currently resident in the pool.
    pub resident_floats: usize,
}

#[derive(Default)]
struct Pool {
    buckets: HashMap<usize, Vec<Vec<f32>>>,
    resident_floats: usize,
    hits: u64,
    misses: u64,
    recycled: u64,
    dropped: u64,
}

thread_local! {
    static POOL: RefCell<Pool> = RefCell::new(Pool::default());
}

/// Returns a zero-filled buffer of exactly `len` floats, reusing a pooled
/// allocation when one of the same length is available.
pub fn take(len: usize) -> Vec<f32> {
    let mut buf = take_uninit(len);
    buf.fill(0.0);
    buf
}

/// Returns a buffer of exactly `len` floats with ARBITRARY contents — stale
/// values from whoever recycled it. Only for callers that overwrite every
/// element before reading any (GEMM outputs, packing panels); everyone else
/// wants [`take`].
pub fn take_uninit(len: usize) -> Vec<f32> {
    POOL.with(|p| {
        let mut p = p.borrow_mut();
        if let Some(buf) = p.buckets.get_mut(&len).and_then(Vec::pop) {
            p.resident_floats -= len;
            p.hits += 1;
            buf
        } else {
            p.misses += 1;
            vec![0.0; len]
        }
    })
}

/// Offers a buffer back to the pool. Buffers beyond the per-thread byte cap
/// (or individually oversized ones) are dropped instead.
pub fn put(buf: Vec<f32>) {
    let len = buf.len();
    if len == 0 {
        return;
    }
    POOL.with(|p| {
        let mut p = p.borrow_mut();
        if len > MAX_BUFFER_FLOATS || p.resident_floats + len > MAX_POOLED_FLOATS {
            p.dropped += 1;
            return;
        }
        p.resident_floats += len;
        p.recycled += 1;
        p.buckets.entry(len).or_default().push(buf);
    })
}

/// Current counters for this thread's pool.
pub fn stats() -> PoolStats {
    POOL.with(|p| {
        let p = p.borrow();
        PoolStats {
            hits: p.hits,
            misses: p.misses,
            recycled: p.recycled,
            dropped: p.dropped,
            resident_floats: p.resident_floats,
        }
    })
}

/// Drops every pooled buffer and zeroes the counters.
pub fn clear() {
    POOL.with(|p| *p.borrow_mut() = Pool::default());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_put_roundtrip_reuses_allocation() {
        clear();
        let mut a = take(1024);
        a[0] = 7.0;
        let ptr = a.as_ptr();
        put(a);
        let b = take(1024);
        assert_eq!(b.as_ptr(), ptr, "same-length take should reuse the buffer");
        assert!(b.iter().all(|&x| x == 0.0), "pooled buffers must come back zeroed");
        let s = stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
        assert_eq!(s.recycled, 1);
        clear();
    }

    #[test]
    fn different_lengths_use_different_buckets() {
        clear();
        put(vec![1.0; 8]);
        let b = take(16);
        assert_eq!(b.len(), 16);
        assert_eq!(stats().hits, 0);
        assert_eq!(stats().misses, 1);
        clear();
    }

    #[test]
    fn empty_buffers_are_ignored() {
        clear();
        put(Vec::new());
        assert_eq!(stats().recycled, 0);
        clear();
    }
}
