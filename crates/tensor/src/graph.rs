//! Reverse-mode automatic differentiation over a single-use tape.
//!
//! A [`Graph`] records every operation executed during a forward pass. Each
//! recorded node keeps its output tensor, the indices of its parents, and a
//! boxed closure that maps the gradient of the node's output to gradient
//! contributions for each parent. [`Graph::backward`] walks the tape in
//! reverse insertion order (which is a valid reverse topological order,
//! because parents are always recorded before children) and accumulates
//! gradients for every node.
//!
//! Graphs are cheap to create; the training loops in `emba-core` build one
//! graph per example and accumulate parameter gradients across a mini-batch,
//! mirroring the paper's remark that the AOA module is computed per sample.

use std::cell::RefCell;

use rand::Rng;

use crate::groups::RowGroups;
use crate::quant::QuantizedMatrix;
use crate::tensor::Tensor;
use crate::{backend, guard, kernels, pool, prof, NORM_EPS};

/// `sqrt(2/pi)`, for the tanh GELU approximation used by BERT.
const GELU_C: f32 = 0.797_884_6;
/// Cubic coefficient of the tanh GELU approximation.
const GELU_K: f32 = 0.044_715;

/// Advances a xorshift64* state and maps the step to a uniform `f32` in
/// `[0, 1)` (top 24 bits). Used by [`Graph::dropout`] so forward and backward
/// can regenerate the same mask from one stored seed.
#[inline]
fn xorshift_unit(state: &mut u64) -> f32 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    (x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
}

#[inline]
pub(crate) fn gelu_forward(x: f32) -> f32 {
    let u = GELU_C * (x + GELU_K * x * x * x);
    0.5 * x * (1.0 + u.tanh())
}

#[inline]
fn gelu_derivative(x: f32) -> f32 {
    let u = GELU_C * (x + GELU_K * x * x * x);
    let t = u.tanh();
    let du = GELU_C * (1.0 + 3.0 * GELU_K * x * x);
    0.5 * (1.0 + t) + 0.5 * x * (1.0 - t * t) * du
}

/// Handle to a node recorded on a [`Graph`].
///
/// A `Var` is only meaningful for the graph that created it; using it with a
/// different graph is a logic error that panics on out-of-bounds access or
/// silently reads the wrong node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Var(usize);

/// Receives gradient contributions for the parents of a node, indexed by the
/// parent's position in the node's parent list.
///
/// Ops whose parent gradient is dense (most of them) build a tensor and hand
/// it over with [`GradSink::add`]. Ops that only touch a *region* of the
/// parent (slices, gathers, embeddings) use [`GradSink::accum`] instead and
/// write straight into the accumulation buffer, which avoids materializing a
/// mostly-zero parent-shaped temporary per contribution.
pub trait GradSink {
    /// Adds `grad` to the accumulated gradient of the parent at `pos`.
    fn add(&mut self, pos: usize, grad: Tensor);

    /// Hands `f` the parent's `rows × cols` gradient accumulation buffer
    /// (zero-initialized the first time the parent is touched). `f` must
    /// *add* its contribution — other children of the same parent may have
    /// deposited gradient there already.
    fn accum(&mut self, pos: usize, rows: usize, cols: usize, f: &mut dyn FnMut(&mut [f32]));
}

type BackwardFn = Box<dyn Fn(&Tensor, &mut dyn GradSink)>;

struct Node {
    /// Tape-op name, kept so the backward sweep can attribute its time to
    /// the op that recorded the node (profiler) by name.
    op: &'static str,
    value: Tensor,
    parents: Vec<usize>,
    backward: Option<BackwardFn>,
}

/// A single-use reverse-mode autodiff tape.
///
/// All operation methods take `&self`; interior mutability keeps call sites
/// ergonomic while the tape grows.
#[derive(Default)]
pub struct Graph {
    nodes: RefCell<Vec<Node>>,
}

/// Gradients produced by [`Graph::backward`], addressable by [`Var`].
pub struct Gradients {
    grads: Vec<Option<Tensor>>,
}

impl Gradients {
    /// The gradient of the backward root with respect to `v`, if `v`
    /// participated in the computation.
    pub fn get(&self, v: Var) -> Option<&Tensor> {
        self.grads.get(v.0).and_then(|g| g.as_ref())
    }

    /// Hands every uniquely-owned gradient buffer back to the scratch
    /// [`pool`]. Call after copying what you need (e.g. accumulating into
    /// parameter `.grad` fields); shared buffers are left untouched.
    pub fn recycle(self) {
        for g in self.grads.into_iter().flatten() {
            g.recycle();
        }
    }
}

/// The [`GradSink`] used by [`Graph::backward`]: routes contributions into
/// the per-node gradient slots, accumulating when a parent already has one.
struct TapeSink<'a> {
    parents: &'a [usize],
    grads: &'a mut [Option<Tensor>],
}

impl GradSink for TapeSink<'_> {
    fn add(&mut self, pos: usize, grad: Tensor) {
        let pid = self.parents[pos];
        match &mut self.grads[pid] {
            Some(existing) => existing.add_scaled_in_place(&grad, 1.0),
            slot @ None => *slot = Some(grad),
        }
    }

    fn accum(&mut self, pos: usize, rows: usize, cols: usize, f: &mut dyn FnMut(&mut [f32])) {
        let pid = self.parents[pos];
        let slot = &mut self.grads[pid];
        let t = slot.get_or_insert_with(|| Tensor::zeros(rows, cols));
        assert_eq!(
            t.shape(),
            (rows, cols),
            "accum: parent gradient is {:?}, op expected {rows}x{cols}",
            t.shape()
        );
        f(t.data_mut());
    }
}

impl Graph {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.borrow().len()
    }

    /// Whether the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records a leaf (input or parameter) node.
    pub fn leaf(&self, value: Tensor) -> Var {
        self.push("leaf", value, vec![], None)
    }

    /// Records a leaf holding the row-concatenation of `parts` — the entry
    /// point for scoring over cached encodings, where per-record tensors
    /// computed on earlier (already recycled) tapes are packed into one
    /// `[Σrows, cols]` input without re-running the ops that produced them.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or column counts disagree (via
    /// [`Tensor::concat_rows`]).
    pub fn leaf_concat_rows(&self, parts: &[&Tensor]) -> Var {
        self.leaf(Tensor::concat_rows(parts))
    }

    /// The forward value of `v` (O(1) buffer share).
    pub fn value(&self, v: Var) -> Tensor {
        self.nodes.borrow()[v.0].value.clone()
    }

    /// Shape of the forward value of `v`.
    pub fn shape(&self, v: Var) -> (usize, usize) {
        self.nodes.borrow()[v.0].value.shape()
    }

    fn push(&self, op: &'static str, value: Tensor, parents: Vec<usize>, backward: Option<BackwardFn>) -> Var {
        // Debug-only non-finite guard: when enabled, scan every op output as
        // it is recorded and report offenders by op name (see [`guard`]).
        if guard::enabled() && !value.all_finite() {
            let (rows, cols) = value.shape();
            guard::record(op, rows, cols);
        }
        let mut nodes = self.nodes.borrow_mut();
        // Opt-in profiler: the op's kernel already ran (its output is
        // `value`), so record now — self-time is the delta from the previous
        // profiler event, which is exactly this op's compute inside a
        // forward pass. Disabled cost is the single `enabled()` check.
        if prof::enabled() {
            let (rows, cols) = value.shape();
            let parent_shapes: Vec<(usize, usize)> =
                parents.iter().map(|&p| nodes[p].value.shape()).collect();
            let flops = prof::estimate_flops(op, &parent_shapes, (rows, cols));
            prof::record_op(op, false, 4 * (rows * cols) as u64, flops);
        }
        nodes.push(Node {
            op,
            value,
            parents,
            backward,
        });
        Var(nodes.len() - 1)
    }

    // ----- elementwise arithmetic ------------------------------------------------

    /// Elementwise `a + b` (same shape).
    pub fn add(&self, a: Var, b: Var) -> Var {
        let out = self.value(a).add(&self.value(b));
        self.push("add",
            out,
            vec![a.0, b.0],
            Some(Box::new(|g, sink| {
                sink.add(0, g.clone());
                sink.add(1, g.clone());
            })),
        )
    }

    /// Elementwise `a - b` (same shape).
    pub fn sub(&self, a: Var, b: Var) -> Var {
        let out = self.value(a).sub(&self.value(b));
        self.push("sub",
            out,
            vec![a.0, b.0],
            Some(Box::new(|g, sink| {
                sink.add(0, g.clone());
                sink.add(1, g.scale(-1.0));
            })),
        )
    }

    /// Elementwise (Hadamard) `a ⊙ b` (same shape).
    pub fn mul(&self, a: Var, b: Var) -> Var {
        let va = self.value(a);
        let vb = self.value(b);
        let out = va.mul(&vb);
        self.push("mul",
            out,
            vec![a.0, b.0],
            Some(Box::new(move |g, sink| {
                sink.add(0, g.mul(&vb));
                sink.add(1, g.mul(&va));
            })),
        )
    }

    /// `a * s` for a compile-time constant `s` (no gradient flows to `s`).
    pub fn scale(&self, a: Var, s: f32) -> Var {
        let out = self.value(a).scale(s);
        self.push("scale",
            out,
            vec![a.0],
            Some(Box::new(move |g, sink| sink.add(0, g.scale(s)))),
        )
    }

    /// Adds a `[1, n]` bias row to every row of an `[m, n]` matrix.
    pub fn add_bias(&self, x: Var, bias: Var) -> Var {
        let vx = self.value(x);
        let vb = self.value(bias);
        assert_eq!(vb.rows(), 1, "add_bias: bias must be a [1, n] row vector");
        assert_eq!(
            vx.cols(),
            vb.cols(),
            "add_bias: width mismatch {} vs {}",
            vx.cols(),
            vb.cols()
        );
        let mut out = vx.clone();
        {
            let cols = out.cols();
            let data = out.data_mut();
            for r in 0..vx.rows() {
                for c in 0..cols {
                    data[r * cols + c] += vb.data()[c];
                }
            }
        }
        self.push("add_bias",
            out,
            vec![x.0, bias.0],
            Some(Box::new(|g, sink| {
                sink.add(0, g.clone());
                // Bias gradient is the column sum of the upstream gradient.
                sink.add(1, g.mean_axis0().scale(g.rows() as f32));
            })),
        )
    }

    // ----- matrix products -------------------------------------------------------

    /// Matrix product `a · b`.
    pub fn matmul(&self, a: Var, b: Var) -> Var {
        let va = self.value(a);
        let vb = self.value(b);
        let out = va.matmul(&vb);
        self.push("matmul",
            out,
            vec![a.0, b.0],
            Some(Box::new(move |g, sink| {
                sink.add(0, g.matmul_nt(&vb));
                sink.add(1, va.matmul_tn(g));
            })),
        )
    }

    /// `a · bᵀ` without materializing the transpose.
    pub fn matmul_nt(&self, a: Var, b: Var) -> Var {
        let va = self.value(a);
        let vb = self.value(b);
        let out = va.matmul_nt(&vb);
        self.push("matmul_nt",
            out,
            vec![a.0, b.0],
            Some(Box::new(move |g, sink| {
                sink.add(0, g.matmul(&vb));
                sink.add(1, g.matmul_tn(&va));
            })),
        )
    }

    /// `aᵀ · b` without materializing the transpose.
    pub fn matmul_tn(&self, a: Var, b: Var) -> Var {
        let va = self.value(a);
        let vb = self.value(b);
        let out = va.matmul_tn(&vb);
        self.push("matmul_tn",
            out,
            vec![a.0, b.0],
            Some(Box::new(move |g, sink| {
                sink.add(0, vb.matmul_nt(g));
                sink.add(1, va.matmul(g));
            })),
        )
    }

    // ----- fused ops -------------------------------------------------------------
    //
    // Each fused op records ONE tape node for a sequence the layers used to
    // record as two or three, which saves the intermediate value tensors, the
    // boxed closures, and the extra full passes over the data in both
    // directions.

    /// Fused affine map `x · w + bias` (one node instead of matmul + add_bias).
    ///
    /// `bias` must be a `[1, n]` row matching the width of `w`.
    pub fn linear(&self, x: Var, w: Var, bias: Var) -> Var {
        let vx = self.value(x);
        let vw = self.value(w);
        let vb = self.value(bias);
        let out = affine_forward(&vx, &vw, &vb);
        self.push("linear",
            out,
            vec![x.0, w.0, bias.0],
            Some(Box::new(move |g, sink| {
                sink.add(0, g.matmul_nt(&vw));
                sink.add(1, vx.matmul_tn(g));
                sink.add(2, col_sums(g));
            })),
        )
    }

    /// Fused `gelu(x · w + bias)` (one node instead of matmul + add_bias +
    /// gelu). The pre-activation is saved for the backward pass.
    pub fn linear_bias_gelu(&self, x: Var, w: Var, bias: Var) -> Var {
        let vx = self.value(x);
        let vw = self.value(w);
        let vb = self.value(bias);
        let pre = affine_forward(&vx, &vw, &vb);
        let out = pre.map(gelu_forward);
        self.push("linear_bias_gelu",
            out,
            vec![x.0, w.0, bias.0],
            Some(Box::new(move |g, sink| {
                // Gradient at the pre-activation, then the affine backward.
                let dh = g.zip(&pre, |gi, u| gi * gelu_derivative(u));
                sink.add(0, dh.matmul_nt(&vw));
                sink.add(1, vx.matmul_tn(&dh));
                sink.add(2, col_sums(&dh));
                dh.recycle();
            })),
        )
    }

    /// Quantized affine map `x · dequant(w) + bias` executed through the
    /// installed [`backend`](crate::backend) (inference only).
    ///
    /// The weight is a pre-quantized int8 matrix, not a tape node, and the
    /// op records **no backward closure**: a backward sweep treats it like a
    /// leaf and produces no gradient. Training must run under the f32
    /// backend; `emba-nn`'s `Linear` only emits this op when
    /// `backend::quantized()` is true.
    pub fn linear_q8(&self, x: Var, w: &QuantizedMatrix, bias: &Tensor) -> Var {
        let vx = self.value(x);
        let out = backend::current().linear_q8(&vx, w, bias, false);
        self.push("linear_q8", out, vec![x.0], None)
    }

    /// Quantized fused `gelu(x · dequant(w) + bias)`; see [`Graph::linear_q8`].
    pub fn linear_q8_gelu(&self, x: Var, w: &QuantizedMatrix, bias: &Tensor) -> Var {
        let vx = self.value(x);
        let out = backend::current().linear_q8(&vx, w, bias, true);
        self.push("linear_q8_gelu", out, vec![x.0], None)
    }

    /// Fused attention-score map `softmax_rows(scale · q · kᵀ)` (one node
    /// instead of matmul_nt + scale + softmax_rows).
    ///
    /// The scale multiply is folded into the softmax pass on the way forward
    /// and into the softmax Jacobian-vector product on the way back, so the
    /// `[seq, seq]` score matrix is only traversed once in each direction.
    pub fn attention_scores(&self, q: Var, k: Var, scale: f32) -> Var {
        let vq = self.value(q);
        let vk = self.value(k);
        assert_eq!(
            vq.cols(),
            vk.cols(),
            "attention_scores: q width {} vs k width {}",
            vq.cols(),
            vk.cols()
        );
        let (m, d, n) = (vq.rows(), vq.cols(), vk.rows());
        let mut buf = pool::take_uninit(m * n);
        backend::gemm_nt(m, d, n, vq.data(), vk.data(), &mut buf);
        for row in buf.chunks_exact_mut(n.max(1)) {
            kernels::scaled_softmax_in_place(row, scale);
        }
        let out = Tensor::from_vec(m, n, buf);
        let p = out.clone();
        self.push("attention_scores",
            out,
            vec![q.0, k.0],
            Some(Box::new(move |g, sink| {
                let (m, n) = g.shape();
                let mut ds = pool::take_uninit(m * n);
                kernels::softmax_rows_backward_scaled(m, n, g.data(), p.data(), scale, &mut ds);
                let ds = Tensor::from_vec(m, n, ds);
                sink.add(0, ds.matmul(&vk));
                sink.add(1, ds.matmul_tn(&vq));
                ds.recycle();
            })),
        )
    }

    /// Matrix transpose.
    pub fn transpose(&self, a: Var) -> Var {
        let out = self.value(a).transpose();
        self.push("transpose",
            out,
            vec![a.0],
            Some(Box::new(|g, sink| sink.add(0, g.transpose()))),
        )
    }

    // ----- nonlinearities ----------------------------------------------------------

    /// Logistic sigmoid.
    pub fn sigmoid(&self, a: Var) -> Var {
        let out = self.value(a).map(|x| 1.0 / (1.0 + (-x).exp()));
        let y = out.clone();
        self.push("sigmoid",
            out,
            vec![a.0],
            Some(Box::new(move |g, sink| {
                sink.add(0, g.zip(&y, |gi, yi| gi * yi * (1.0 - yi)));
            })),
        )
    }

    /// Hyperbolic tangent.
    pub fn tanh(&self, a: Var) -> Var {
        let out = self.value(a).map(f32::tanh);
        let y = out.clone();
        self.push("tanh",
            out,
            vec![a.0],
            Some(Box::new(move |g, sink| {
                sink.add(0, g.zip(&y, |gi, yi| gi * (1.0 - yi * yi)));
            })),
        )
    }

    /// Rectified linear unit.
    pub fn relu(&self, a: Var) -> Var {
        let vx = self.value(a);
        let out = vx.map(|x| x.max(0.0));
        self.push("relu",
            out,
            vec![a.0],
            Some(Box::new(move |g, sink| {
                sink.add(0, g.zip(&vx, |gi, xi| if xi > 0.0 { gi } else { 0.0 }));
            })),
        )
    }

    /// GELU with the tanh approximation used by BERT.
    pub fn gelu(&self, a: Var) -> Var {
        let vx = self.value(a);
        let out = vx.map(gelu_forward);
        self.push("gelu",
            out,
            vec![a.0],
            Some(Box::new(move |g, sink| {
                sink.add(0, g.zip(&vx, |gi, x| gi * gelu_derivative(x)));
            })),
        )
    }

    // ----- softmax family ------------------------------------------------------------

    /// Softmax over each row.
    pub fn softmax_rows(&self, a: Var) -> Var {
        let out = self.value(a).softmax_rows();
        let p = out.clone();
        self.push("softmax_rows",
            out,
            vec![a.0],
            Some(Box::new(move |g, sink| {
                sink.add(0, softmax_rows_backward(g, &p));
            })),
        )
    }

    /// Softmax over each column.
    pub fn softmax_cols(&self, a: Var) -> Var {
        let out = self.value(a).softmax_cols();
        let p = out.clone();
        self.push("softmax_cols",
            out,
            vec![a.0],
            Some(Box::new(move |g, sink| {
                let (m, n) = g.shape();
                let mut dx = pool::take_uninit(m * n);
                kernels::softmax_cols_backward(m, n, g.data(), p.data(), &mut dx);
                sink.add(0, Tensor::from_vec(m, n, dx));
            })),
        )
    }

    /// Log-softmax over each row (numerically stable).
    pub fn log_softmax_rows(&self, a: Var) -> Var {
        let vx = self.value(a);
        let (m, n) = vx.shape();
        let mut out = vec![0.0f32; m * n];
        for r in 0..m {
            let row = vx.row_slice(r);
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let lse = row.iter().map(|&x| (x - max).exp()).sum::<f32>().ln() + max;
            for (o, &x) in out[r * n..(r + 1) * n].iter_mut().zip(row) {
                *o = x - lse;
            }
        }
        let out = Tensor::from_vec(m, n, out);
        let p = out.map(f32::exp);
        self.push("log_softmax_rows",
            out,
            vec![a.0],
            Some(Box::new(move |g, sink| {
                // dx = g - softmax(x) * rowsum(g)
                let (m, n) = g.shape();
                let mut dx = g.clone();
                {
                    let data = dx.data_mut();
                    for r in 0..m {
                        let s: f32 = g.row_slice(r).iter().sum();
                        for c in 0..n {
                            data[r * n + c] -= p.get(r, c) * s;
                        }
                    }
                }
                sink.add(0, dx);
            })),
        )
    }

    // ----- normalization -----------------------------------------------------------

    /// Per-row layer normalization with learned scale and shift:
    /// `y = gamma ⊙ (x - mean)/sqrt(var + eps) + beta`.
    ///
    /// `gamma` and `beta` must be `[1, n]` rows matching the width of `x`.
    pub fn layer_norm(&self, x: Var, gamma: Var, beta: Var) -> Var {
        let vx = self.value(x);
        let vg = self.value(gamma);
        let vb = self.value(beta);
        let (m, n) = vx.shape();
        assert_eq!(vg.shape(), (1, n), "layer_norm: gamma must be [1,{n}]");
        assert_eq!(vb.shape(), (1, n), "layer_norm: beta must be [1,{n}]");

        let mut xhat = vec![0.0f32; m * n];
        let mut inv_std = vec![0.0f32; m];
        for r in 0..m {
            let row = vx.row_slice(r);
            let mean = row.iter().sum::<f32>() / n as f32;
            let var = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / n as f32;
            let istd = 1.0 / (var + NORM_EPS).sqrt();
            inv_std[r] = istd;
            for (o, &v) in xhat[r * n..(r + 1) * n].iter_mut().zip(row) {
                *o = (v - mean) * istd;
            }
        }
        let xhat = Tensor::from_vec(m, n, xhat);
        let mut out = vec![0.0f32; m * n];
        for r in 0..m {
            for c in 0..n {
                out[r * n + c] = vg.data()[c] * xhat.get(r, c) + vb.data()[c];
            }
        }
        let out = Tensor::from_vec(m, n, out);

        self.push("layer_norm",
            out,
            vec![x.0, gamma.0, beta.0],
            Some(Box::new(move |g, sink| {
                let (m, n) = g.shape();
                // Parameter gradients: column sums.
                let mut dgamma = vec![0.0f32; n];
                let mut dbeta = vec![0.0f32; n];
                for r in 0..m {
                    for c in 0..n {
                        dgamma[c] += g.get(r, c) * xhat.get(r, c);
                        dbeta[c] += g.get(r, c);
                    }
                }
                // Input gradient per row.
                let mut dx = vec![0.0f32; m * n];
                for r in 0..m {
                    let mut mean_dxhat = 0.0f32;
                    let mut mean_dxhat_xhat = 0.0f32;
                    for c in 0..n {
                        let dxh = g.get(r, c) * vg.data()[c];
                        mean_dxhat += dxh;
                        mean_dxhat_xhat += dxh * xhat.get(r, c);
                    }
                    mean_dxhat /= n as f32;
                    mean_dxhat_xhat /= n as f32;
                    for c in 0..n {
                        let dxh = g.get(r, c) * vg.data()[c];
                        dx[r * n + c] =
                            inv_std[r] * (dxh - mean_dxhat - xhat.get(r, c) * mean_dxhat_xhat);
                    }
                }
                sink.add(0, Tensor::from_vec(m, n, dx));
                sink.add(1, Tensor::from_vec(1, n, dgamma));
                sink.add(2, Tensor::from_vec(1, n, dbeta));
            })),
        )
    }

    // ----- gather / structure ops --------------------------------------------------

    /// Gathers rows `ids` of an embedding matrix: `[V, h] -> [len(ids), h]`.
    ///
    /// The backward pass scatter-adds the output gradient into the rows of
    /// the weight gradient.
    pub fn embedding(&self, weight: Var, ids: &[usize]) -> Var {
        let vw = self.value(weight);
        let (v, h) = vw.shape();
        let mut out = Vec::with_capacity(ids.len() * h);
        for &id in ids {
            assert!(id < v, "embedding id {id} out of range for vocab {v}");
            out.extend_from_slice(vw.row_slice(id));
        }
        let out = Tensor::from_vec(ids.len(), h, out);
        let ids = ids.to_vec();
        self.push("embedding",
            out,
            vec![weight.0],
            Some(Box::new(move |g, sink| {
                sink.accum(0, v, h, &mut |data| {
                    for (row, &id) in ids.iter().enumerate() {
                        let src = g.row_slice(row);
                        let dst = &mut data[id * h..(id + 1) * h];
                        for (d, &s) in dst.iter_mut().zip(src) {
                            *d += s;
                        }
                    }
                });
            })),
        )
    }

    /// Mean over rows: `[m, n] -> [1, n]`.
    pub fn mean_axis0(&self, a: Var) -> Var {
        let va = self.value(a);
        let m = va.rows();
        let out = va.mean_axis0();
        self.push("mean_axis0",
            out,
            vec![a.0],
            Some(Box::new(move |g, sink| {
                let scaled = g.scale(1.0 / m as f32);
                let parts: Vec<&Tensor> = (0..m).map(|_| &scaled).collect();
                sink.add(0, Tensor::concat_rows(&parts));
            })),
        )
    }

    /// Mean over columns: `[m, n] -> [m, 1]`.
    pub fn mean_axis1(&self, a: Var) -> Var {
        let va = self.value(a);
        let (m, n) = va.shape();
        let out = va.mean_axis1();
        self.push("mean_axis1",
            out,
            vec![a.0],
            Some(Box::new(move |g, sink| {
                let mut dx = Tensor::zeros(m, n);
                {
                    let data = dx.data_mut();
                    for r in 0..m {
                        let gv = g.get(r, 0) / n as f32;
                        for c in 0..n {
                            data[r * n + c] = gv;
                        }
                    }
                }
                sink.add(0, dx);
            })),
        )
    }

    /// Sum of all elements, producing a `[1, 1]` scalar.
    pub fn sum_all(&self, a: Var) -> Var {
        let va = self.value(a);
        let (m, n) = va.shape();
        let out = Tensor::scalar(va.sum());
        self.push("sum_all",
            out,
            vec![a.0],
            Some(Box::new(move |g, sink| {
                sink.add(0, Tensor::full(m, n, g.item()));
            })),
        )
    }

    /// Mean of all elements, producing a `[1, 1]` scalar.
    pub fn mean_all(&self, a: Var) -> Var {
        let va = self.value(a);
        let (m, n) = va.shape();
        let count = (m * n).max(1) as f32;
        let out = Tensor::scalar(va.mean());
        self.push("mean_all",
            out,
            vec![a.0],
            Some(Box::new(move |g, sink| {
                sink.add(0, Tensor::full(m, n, g.item() / count));
            })),
        )
    }

    /// Vertically stacks variables with identical widths.
    pub fn concat_rows(&self, parts: &[Var]) -> Var {
        assert!(!parts.is_empty(), "concat_rows requires at least one input");
        let values: Vec<Tensor> = parts.iter().map(|&p| self.value(p)).collect();
        let refs: Vec<&Tensor> = values.iter().collect();
        let out = Tensor::concat_rows(&refs);
        let row_counts: Vec<usize> = values.iter().map(|t| t.rows()).collect();
        self.push("concat_rows",
            out,
            parts.iter().map(|p| p.0).collect(),
            Some(Box::new(move |g, sink| {
                let mut r = 0;
                for (i, &rc) in row_counts.iter().enumerate() {
                    sink.add(i, g.slice_rows(r, r + rc));
                    r += rc;
                }
            })),
        )
    }

    /// Horizontally stacks variables with identical heights.
    pub fn concat_cols(&self, parts: &[Var]) -> Var {
        assert!(!parts.is_empty(), "concat_cols requires at least one input");
        let values: Vec<Tensor> = parts.iter().map(|&p| self.value(p)).collect();
        let refs: Vec<&Tensor> = values.iter().collect();
        let out = Tensor::concat_cols(&refs);
        let col_counts: Vec<usize> = values.iter().map(|t| t.cols()).collect();
        self.push("concat_cols",
            out,
            parts.iter().map(|p| p.0).collect(),
            Some(Box::new(move |g, sink| {
                let mut c = 0;
                for (i, &cc) in col_counts.iter().enumerate() {
                    sink.add(i, g.slice_cols(c, c + cc));
                    c += cc;
                }
            })),
        )
    }

    /// Rows `[r0, r1)` of `a`.
    pub fn slice_rows(&self, a: Var, r0: usize, r1: usize) -> Var {
        let va = self.value(a);
        let (m, n) = va.shape();
        let out = va.slice_rows(r0, r1);
        self.push("slice_rows",
            out,
            vec![a.0],
            Some(Box::new(move |g, sink| {
                sink.accum(0, m, n, &mut |data| {
                    for (d, &s) in data[r0 * n..r1 * n].iter_mut().zip(g.data()) {
                        *d += s;
                    }
                });
            })),
        )
    }

    /// Columns `[c0, c1)` of `a`.
    pub fn slice_cols(&self, a: Var, c0: usize, c1: usize) -> Var {
        let va = self.value(a);
        let (m, n) = va.shape();
        let out = va.slice_cols(c0, c1);
        let w = c1 - c0;
        self.push("slice_cols",
            out,
            vec![a.0],
            Some(Box::new(move |g, sink| {
                sink.accum(0, m, n, &mut |data| {
                    for r in 0..m {
                        let dst = &mut data[r * n + c0..r * n + c1];
                        for (d, &s) in dst.iter_mut().zip(&g.row_slice(r)[..w]) {
                            *d += s;
                        }
                    }
                });
            })),
        )
    }

    // ----- grouped (batched) ops ---------------------------------------------------
    //
    // The batched execution layer packs several variable-length sequences
    // into one row-packed `[ΣT, H]` matrix and describes the per-sequence row
    // ranges with a [`RowGroups`]. The ops below apply their per-sequence
    // computation block-diagonally: attention cannot cross group boundaries,
    // softmaxes are masked to each group's valid prefix, and reductions run
    // per group. Score-like outputs use a padded width `W = max group len`
    // with structurally-zero columns beyond each group's width; gradients for
    // those columns are never read or written.

    /// Gathers arbitrary rows of `a`: `[m, n] -> [len(rows), n]`.
    ///
    /// Replaces per-example `slice_rows` storms on the batched path (CLS/SEP
    /// extraction, per-pair record splits). The backward pass scatter-adds
    /// straight into the parent's gradient accumulation buffer.
    pub fn gather_rows(&self, a: Var, rows: &[usize]) -> Var {
        let va = self.value(a);
        let (m, n) = va.shape();
        let mut out = pool::take_uninit(rows.len() * n);
        for (i, &r) in rows.iter().enumerate() {
            assert!(r < m, "gather_rows: row {r} out of bounds for {m} rows");
            out[i * n..(i + 1) * n].copy_from_slice(va.row_slice(r));
        }
        let out = Tensor::from_vec(rows.len(), n, out);
        let rows = rows.to_vec();
        self.push("gather_rows",
            out,
            vec![a.0],
            Some(Box::new(move |g, sink| {
                sink.accum(0, m, n, &mut |data| {
                    for (i, &r) in rows.iter().enumerate() {
                        let src = g.row_slice(i);
                        let dst = &mut data[r * n..(r + 1) * n];
                        for (d, &s) in dst.iter_mut().zip(src) {
                            *d += s;
                        }
                    }
                });
            })),
        )
    }

    /// Block-diagonal fused attention scores over packed rows.
    ///
    /// `q` and `k` are `[ΣT, d]` packed by `groups`; the output is `[ΣT, W]`
    /// (`W = groups.max_len()`) where the rows of group `g` hold
    /// `softmax_rows(scale · q_g · k_gᵀ)` in columns `0..T_g` and zeros
    /// beyond — sequences cannot attend across the batch by construction.
    pub fn attention_scores_grouped(&self, q: Var, k: Var, scale: f32, groups: &RowGroups) -> Var {
        let vq = self.value(q);
        let vk = self.value(k);
        let (nrows, d) = vq.shape();
        assert_eq!(vk.shape(), (nrows, d), "attention_scores_grouped: q/k shape mismatch");
        assert_eq!(groups.total(), nrows, "attention_scores_grouped: groups cover {} rows, q has {nrows}", groups.total());
        let w = groups.max_len();
        let mut out = pool::take(nrows * w);
        for gi in 0..groups.len() {
            let (r0, r1) = groups.range(gi);
            let t = r1 - r0;
            if t == 0 {
                continue;
            }
            let qb = &vq.data()[r0 * d..r1 * d];
            let kb = &vk.data()[r0 * d..r1 * d];
            if t == w {
                let ob = &mut out[r0 * w..r1 * w];
                backend::gemm_nt(t, d, t, qb, kb, ob);
                for row in ob.chunks_exact_mut(t) {
                    kernels::scaled_softmax_in_place(row, scale);
                }
            } else {
                let mut sb = pool::take_uninit(t * t);
                backend::gemm_nt(t, d, t, qb, kb, &mut sb);
                for row in sb.chunks_exact_mut(t) {
                    kernels::scaled_softmax_in_place(row, scale);
                }
                scatter_copy_prefix(&sb, r0, t, w, t, &mut out);
                pool::put(sb);
            }
        }
        let out = Tensor::from_vec(nrows, w, out);
        let p = out.clone();
        let groups = groups.clone();
        self.push("attention_scores_grouped",
            out,
            vec![q.0, k.0],
            Some(Box::new(move |g, sink| {
                // Softmax JVP per group into one packed [Σ T²] buffer, then a
                // pair of GEMMs per group, accumulated in place.
                let total_sq: usize = (0..groups.len()).map(|i| groups.len_of(i).pow(2)).sum();
                let mut ds_all = pool::take_uninit(total_sq);
                let mut sq_offs = Vec::with_capacity(groups.len());
                let mut off = 0;
                for gi in 0..groups.len() {
                    let (r0, r1) = groups.range(gi);
                    let t = r1 - r0;
                    sq_offs.push(off);
                    if t == 0 {
                        continue;
                    }
                    let ds = &mut ds_all[off..off + t * t];
                    if t == w {
                        kernels::softmax_rows_backward_scaled(
                            t, t, &g.data()[r0 * w..r1 * w], &p.data()[r0 * w..r1 * w], scale, ds,
                        );
                    } else {
                        let mut gb = pool::take_uninit(t * t);
                        let mut pb = pool::take_uninit(t * t);
                        gather_prefix(g.data(), r0, t, w, t, &mut gb);
                        gather_prefix(p.data(), r0, t, w, t, &mut pb);
                        kernels::softmax_rows_backward_scaled(t, t, &gb, &pb, scale, ds);
                        pool::put(gb);
                        pool::put(pb);
                    }
                    off += t * t;
                }
                let mut scratch = pool::take_uninit(w * d);
                sink.accum(0, nrows, d, &mut |dq| {
                    for gi in 0..groups.len() {
                        let (r0, r1) = groups.range(gi);
                        let t = r1 - r0;
                        if t == 0 {
                            continue;
                        }
                        let ds = &ds_all[sq_offs[gi]..sq_offs[gi] + t * t];
                        let kb = &vk.data()[r0 * d..r1 * d];
                        backend::gemm_nn(t, t, d, ds, kb, &mut scratch[..t * d]);
                        scatter_add_prefix(&scratch[..t * d], r0, t, d, d, dq);
                    }
                });
                sink.accum(1, nrows, d, &mut |dk| {
                    for gi in 0..groups.len() {
                        let (r0, r1) = groups.range(gi);
                        let t = r1 - r0;
                        if t == 0 {
                            continue;
                        }
                        let ds = &ds_all[sq_offs[gi]..sq_offs[gi] + t * t];
                        let qb = &vq.data()[r0 * d..r1 * d];
                        backend::gemm_tn(t, t, d, ds, qb, &mut scratch[..t * d]);
                        scatter_add_prefix(&scratch[..t * d], r0, t, d, d, dk);
                    }
                });
                pool::put(scratch);
                pool::put(ds_all);
            })),
        )
    }

    /// Block-diagonal `probs · values` over packed rows: `p` is `[ΣT, W]`
    /// group-masked attention probabilities, `v` is `[ΣT, d]` packed values,
    /// and each group's output rows are `P_g · V_g`.
    pub fn matmul_grouped(&self, p: Var, v: Var, groups: &RowGroups) -> Var {
        let vp = self.value(p);
        let vv = self.value(v);
        let (nrows, w) = vp.shape();
        let (nv, d) = vv.shape();
        assert_eq!(nrows, nv, "matmul_grouped: probs rows {nrows} vs value rows {nv}");
        assert_eq!(groups.total(), nrows, "matmul_grouped: groups cover {} rows, got {nrows}", groups.total());
        assert_eq!(groups.max_len(), w, "matmul_grouped: probs width {w} vs max group len {}", groups.max_len());
        let mut out = pool::take(nrows * d);
        for gi in 0..groups.len() {
            let (r0, r1) = groups.range(gi);
            let t = r1 - r0;
            if t == 0 {
                continue;
            }
            let vb = &vv.data()[r0 * d..r1 * d];
            let ob = &mut out[r0 * d..r1 * d];
            if t == w {
                backend::gemm_nn(t, t, d, &vp.data()[r0 * w..r1 * w], vb, ob);
            } else {
                let mut pb = pool::take_uninit(t * t);
                gather_prefix(vp.data(), r0, t, w, t, &mut pb);
                backend::gemm_nn(t, t, d, &pb, vb, ob);
                pool::put(pb);
            }
        }
        let out = Tensor::from_vec(nrows, d, out);
        let groups = groups.clone();
        self.push("matmul_grouped",
            out,
            vec![p.0, v.0],
            Some(Box::new(move |g, sink| {
                let mut scratch = pool::take_uninit(w * w.max(d));
                sink.accum(0, nrows, w, &mut |dp| {
                    for gi in 0..groups.len() {
                        let (r0, r1) = groups.range(gi);
                        let t = r1 - r0;
                        if t == 0 {
                            continue;
                        }
                        let gb = &g.data()[r0 * d..r1 * d];
                        let vb = &vv.data()[r0 * d..r1 * d];
                        backend::gemm_nt(t, d, t, gb, vb, &mut scratch[..t * t]);
                        scatter_add_prefix(&scratch[..t * t], r0, t, w, t, dp);
                    }
                });
                sink.accum(1, nrows, d, &mut |dv| {
                    for gi in 0..groups.len() {
                        let (r0, r1) = groups.range(gi);
                        let t = r1 - r0;
                        if t == 0 {
                            continue;
                        }
                        let gb = &g.data()[r0 * d..r1 * d];
                        if t == w {
                            backend::gemm_tn(t, t, d, &vp.data()[r0 * w..r1 * w], gb, &mut scratch[..t * d]);
                        } else {
                            let mut pb = pool::take_uninit(t * t);
                            gather_prefix(vp.data(), r0, t, w, t, &mut pb);
                            backend::gemm_tn(t, t, d, &pb, gb, &mut scratch[..t * d]);
                            pool::put(pb);
                        }
                        scatter_add_prefix(&scratch[..t * d], r0, t, d, d, dv);
                    }
                });
                pool::put(scratch);
            })),
        )
    }

    /// Batched pairwise interaction `I_g = A_g · B_gᵀ`.
    ///
    /// `a` is `[ΣM, h]` packed by `ga` and `b` is `[ΣN, h]` packed by `gb`
    /// (one group per pair, same group count). The output is `[ΣM, W]` with
    /// `W = gb.max_len()`; each group's rows hold its interaction matrix in
    /// columns `0..N_g`, zero beyond.
    pub fn interaction_grouped(&self, a: Var, ga: &RowGroups, b: Var, gb: &RowGroups) -> Var {
        let va = self.value(a);
        let vb = self.value(b);
        let (ma, h) = va.shape();
        let (mb, h2) = vb.shape();
        assert_eq!(h, h2, "interaction_grouped: width mismatch {h} vs {h2}");
        assert_eq!(ga.total(), ma, "interaction_grouped: left groups cover {} rows, got {ma}", ga.total());
        assert_eq!(gb.total(), mb, "interaction_grouped: right groups cover {} rows, got {mb}", gb.total());
        assert_eq!(ga.len(), gb.len(), "interaction_grouped: {} left vs {} right groups", ga.len(), gb.len());
        let w = gb.max_len();
        let mut out = pool::take(ma * w);
        for gi in 0..ga.len() {
            let (ar0, ar1) = ga.range(gi);
            let (br0, br1) = gb.range(gi);
            let (ta, tb) = (ar1 - ar0, br1 - br0);
            if ta == 0 || tb == 0 {
                continue;
            }
            let ab = &va.data()[ar0 * h..ar1 * h];
            let bb = &vb.data()[br0 * h..br1 * h];
            if tb == w {
                backend::gemm_nt(ta, h, tb, ab, bb, &mut out[ar0 * w..ar1 * w]);
            } else {
                let mut sb = pool::take_uninit(ta * tb);
                backend::gemm_nt(ta, h, tb, ab, bb, &mut sb);
                scatter_copy_prefix(&sb, ar0, ta, w, tb, &mut out);
                pool::put(sb);
            }
        }
        let out = Tensor::from_vec(ma, w, out);
        let (ga, gb) = (ga.clone(), gb.clone());
        self.push("interaction_grouped",
            out,
            vec![a.0, b.0],
            Some(Box::new(move |g, sink| {
                let mut scratch = pool::take_uninit(w.max(ga.max_len()) * h);
                sink.accum(0, ma, h, &mut |da| {
                    for gi in 0..ga.len() {
                        let (ar0, ar1) = ga.range(gi);
                        let (br0, br1) = gb.range(gi);
                        let (ta, tb) = (ar1 - ar0, br1 - br0);
                        if ta == 0 || tb == 0 {
                            continue;
                        }
                        let bb = &vb.data()[br0 * h..br1 * h];
                        if tb == w {
                            backend::gemm_nn(ta, tb, h, &g.data()[ar0 * w..ar1 * w], bb, &mut scratch[..ta * h]);
                        } else {
                            let mut gp = pool::take_uninit(ta * tb);
                            gather_prefix(g.data(), ar0, ta, w, tb, &mut gp);
                            backend::gemm_nn(ta, tb, h, &gp, bb, &mut scratch[..ta * h]);
                            pool::put(gp);
                        }
                        scatter_add_prefix(&scratch[..ta * h], ar0, ta, h, h, da);
                    }
                });
                sink.accum(1, mb, h, &mut |db| {
                    for gi in 0..ga.len() {
                        let (ar0, ar1) = ga.range(gi);
                        let (br0, br1) = gb.range(gi);
                        let (ta, tb) = (ar1 - ar0, br1 - br0);
                        if ta == 0 || tb == 0 {
                            continue;
                        }
                        let ab = &va.data()[ar0 * h..ar1 * h];
                        if tb == w {
                            backend::gemm_tn(tb, ta, h, &g.data()[ar0 * w..ar1 * w], ab, &mut scratch[..tb * h]);
                        } else {
                            let mut gp = pool::take_uninit(ta * tb);
                            gather_prefix(g.data(), ar0, ta, w, tb, &mut gp);
                            backend::gemm_tn(tb, ta, h, &gp, ab, &mut scratch[..tb * h]);
                            pool::put(gp);
                        }
                        scatter_add_prefix(&scratch[..tb * h], br0, tb, h, h, db);
                    }
                });
                pool::put(scratch);
            })),
        )
    }

    /// Masked row softmax over ragged groups: row `r` of group `g` is
    /// softmaxed over its valid prefix `0..N_g` (widths from `gb`); columns
    /// beyond stay zero.
    pub fn softmax_rows_grouped(&self, x: Var, ga: &RowGroups, gb: &RowGroups) -> Var {
        let vx = self.value(x);
        let (ma, w) = vx.shape();
        assert_eq!(ga.total(), ma, "softmax_rows_grouped: groups cover {} rows, got {ma}", ga.total());
        assert_eq!(ga.len(), gb.len(), "softmax_rows_grouped: group count mismatch");
        assert_eq!(gb.max_len(), w, "softmax_rows_grouped: width {w} vs max group width {}", gb.max_len());
        let mut out = pool::take(ma * w);
        for gi in 0..ga.len() {
            let (r0, r1) = ga.range(gi);
            let tb = gb.len_of(gi);
            if tb == 0 {
                continue;
            }
            for r in r0..r1 {
                let row = &mut out[r * w..r * w + tb];
                row.copy_from_slice(&vx.data()[r * w..r * w + tb]);
                kernels::scaled_softmax_in_place(row, 1.0);
            }
        }
        let out = Tensor::from_vec(ma, w, out);
        let p = out.clone();
        let (ga, gb) = (ga.clone(), gb.clone());
        self.push("softmax_rows_grouped",
            out,
            vec![x.0],
            Some(Box::new(move |g, sink| {
                sink.accum(0, ma, w, &mut |dx| {
                    for gi in 0..ga.len() {
                        let (r0, r1) = ga.range(gi);
                        let ta = r1 - r0;
                        let tb = gb.len_of(gi);
                        if ta == 0 || tb == 0 {
                            continue;
                        }
                        let mut gp = pool::take_uninit(ta * tb);
                        let mut pp = pool::take_uninit(ta * tb);
                        let mut ds = pool::take_uninit(ta * tb);
                        gather_prefix(g.data(), r0, ta, w, tb, &mut gp);
                        gather_prefix(p.data(), r0, ta, w, tb, &mut pp);
                        kernels::softmax_rows_backward_scaled(ta, tb, &gp, &pp, 1.0, &mut ds);
                        scatter_add_prefix(&ds, r0, ta, w, tb, dx);
                        pool::put(gp);
                        pool::put(pp);
                        pool::put(ds);
                    }
                });
            })),
        )
    }

    /// Masked column softmax over ragged groups: column `c < N_g` of group
    /// `g` is softmaxed down the group's rows; columns beyond each group's
    /// width stay zero.
    pub fn softmax_cols_grouped(&self, x: Var, ga: &RowGroups, gb: &RowGroups) -> Var {
        let vx = self.value(x);
        let (ma, w) = vx.shape();
        assert_eq!(ga.total(), ma, "softmax_cols_grouped: groups cover {} rows, got {ma}", ga.total());
        assert_eq!(ga.len(), gb.len(), "softmax_cols_grouped: group count mismatch");
        assert_eq!(gb.max_len(), w, "softmax_cols_grouped: width {w} vs max group width {}", gb.max_len());
        let mut out = pool::take(ma * w);
        let mut col = Vec::new();
        for gi in 0..ga.len() {
            let (r0, r1) = ga.range(gi);
            let ta = r1 - r0;
            let tb = gb.len_of(gi);
            if ta == 0 || tb == 0 {
                continue;
            }
            col.resize(ta, 0.0);
            for c in 0..tb {
                for (i, v) in col.iter_mut().enumerate() {
                    *v = vx.data()[(r0 + i) * w + c];
                }
                kernels::scaled_softmax_in_place(&mut col, 1.0);
                for (i, &v) in col.iter().enumerate() {
                    out[(r0 + i) * w + c] = v;
                }
            }
        }
        let out = Tensor::from_vec(ma, w, out);
        let p = out.clone();
        let (ga, gb) = (ga.clone(), gb.clone());
        self.push("softmax_cols_grouped",
            out,
            vec![x.0],
            Some(Box::new(move |g, sink| {
                sink.accum(0, ma, w, &mut |dx| {
                    for gi in 0..ga.len() {
                        let (r0, r1) = ga.range(gi);
                        let ta = r1 - r0;
                        let tb = gb.len_of(gi);
                        if ta == 0 || tb == 0 {
                            continue;
                        }
                        let mut gp = pool::take_uninit(ta * tb);
                        let mut pp = pool::take_uninit(ta * tb);
                        let mut ds = pool::take_uninit(ta * tb);
                        gather_prefix(g.data(), r0, ta, w, tb, &mut gp);
                        gather_prefix(p.data(), r0, ta, w, tb, &mut pp);
                        kernels::softmax_cols_backward(ta, tb, &gp, &pp, &mut ds);
                        scatter_add_prefix(&ds, r0, ta, w, tb, dx);
                        pool::put(gp);
                        pool::put(pp);
                        pool::put(ds);
                    }
                });
            })),
        )
    }

    /// Per-group mean over rows: `[ΣT, n] -> [G, n]`.
    pub fn mean_rows_grouped(&self, x: Var, groups: &RowGroups) -> Var {
        let vx = self.value(x);
        let (ma, n) = vx.shape();
        assert_eq!(groups.total(), ma, "mean_rows_grouped: groups cover {} rows, got {ma}", groups.total());
        let gcount = groups.len();
        let mut out = pool::take(gcount * n);
        for gi in 0..gcount {
            let (r0, r1) = groups.range(gi);
            let t = r1 - r0;
            if t == 0 {
                continue;
            }
            let orow = &mut out[gi * n..(gi + 1) * n];
            for r in r0..r1 {
                for (o, &v) in orow.iter_mut().zip(&vx.data()[r * n..(r + 1) * n]) {
                    *o += v;
                }
            }
            let inv = 1.0 / t as f32;
            for o in orow.iter_mut() {
                *o *= inv;
            }
        }
        let out = Tensor::from_vec(gcount, n, out);
        let groups = groups.clone();
        self.push("mean_rows_grouped",
            out,
            vec![x.0],
            Some(Box::new(move |g, sink| {
                sink.accum(0, ma, n, &mut |dx| {
                    for gi in 0..groups.len() {
                        let (r0, r1) = groups.range(gi);
                        let t = r1 - r0;
                        if t == 0 {
                            continue;
                        }
                        let inv = 1.0 / t as f32;
                        let grow = g.row_slice(gi);
                        for r in r0..r1 {
                            for (d, &s) in dx[r * n..(r + 1) * n].iter_mut().zip(grow) {
                                *d += s * inv;
                            }
                        }
                    }
                });
            })),
        )
    }

    /// Per-row dot product against the row's group vector:
    /// `a: [ΣT, w]`, `b: [G, w]` → `[ΣT, 1]` with
    /// `out[r] = a[r] · b[group(r)]`.
    pub fn rowdot_grouped(&self, a: Var, b: Var, groups: &RowGroups) -> Var {
        let va = self.value(a);
        let vb = self.value(b);
        let (ma, w) = va.shape();
        assert_eq!(groups.total(), ma, "rowdot_grouped: groups cover {} rows, got {ma}", groups.total());
        assert_eq!(vb.shape(), (groups.len(), w), "rowdot_grouped: b must be [{}, {w}]", groups.len());
        let mut out = pool::take_uninit(ma);
        for gi in 0..groups.len() {
            let (r0, r1) = groups.range(gi);
            let brow = vb.row_slice(gi);
            for (o, r) in out[r0..r1].iter_mut().zip(r0..) {
                *o = kernels::dot(&va.data()[r * w..(r + 1) * w], brow);
            }
        }
        let out = Tensor::from_vec(ma, 1, out);
        let groups = groups.clone();
        let gcount = groups.len();
        self.push("rowdot_grouped",
            out,
            vec![a.0, b.0],
            Some(Box::new(move |g, sink| {
                sink.accum(0, ma, w, &mut |da| {
                    for gi in 0..gcount {
                        let (r0, r1) = groups.range(gi);
                        let brow = vb.row_slice(gi);
                        for r in r0..r1 {
                            let gv = g.data()[r];
                            for (d, &s) in da[r * w..(r + 1) * w].iter_mut().zip(brow) {
                                *d += gv * s;
                            }
                        }
                    }
                });
                sink.accum(1, gcount, w, &mut |db| {
                    for gi in 0..gcount {
                        let (r0, r1) = groups.range(gi);
                        let drow = &mut db[gi * w..(gi + 1) * w];
                        for r in r0..r1 {
                            let gv = g.data()[r];
                            for (d, &s) in drow.iter_mut().zip(&va.data()[r * w..(r + 1) * w]) {
                                *d += gv * s;
                            }
                        }
                    }
                });
            })),
        )
    }

    /// Per-group weighted sum of rows: `w: [ΣT, 1]`, `x: [ΣT, n]` →
    /// `[G, n]` with `out[g] = Σ_{r ∈ g} w[r] · x[r]`. This is the batched
    /// form of `weightsᵀ · tokens` pooling (AOA γᵀ·E1, attention heads).
    pub fn weighted_sum_rows_grouped(&self, wv: Var, x: Var, groups: &RowGroups) -> Var {
        let vw = self.value(wv);
        let vx = self.value(x);
        let (ma, n) = vx.shape();
        assert_eq!(vw.shape(), (ma, 1), "weighted_sum_rows_grouped: weights must be [{ma}, 1]");
        assert_eq!(groups.total(), ma, "weighted_sum_rows_grouped: groups cover {} rows, got {ma}", groups.total());
        let gcount = groups.len();
        let mut out = pool::take(gcount * n);
        for gi in 0..gcount {
            let (r0, r1) = groups.range(gi);
            let t = r1 - r0;
            if t == 0 {
                continue;
            }
            backend::gemm_tn(
                1,
                t,
                n,
                &vw.data()[r0..r1],
                &vx.data()[r0 * n..r1 * n],
                &mut out[gi * n..(gi + 1) * n],
            );
        }
        let out = Tensor::from_vec(gcount, n, out);
        let groups = groups.clone();
        self.push("weighted_sum_rows_grouped",
            out,
            vec![wv.0, x.0],
            Some(Box::new(move |g, sink| {
                sink.accum(0, ma, 1, &mut |dw| {
                    for gi in 0..groups.len() {
                        let (r0, r1) = groups.range(gi);
                        let grow = g.row_slice(gi);
                        for (d, r) in dw[r0..r1].iter_mut().zip(r0..) {
                            *d += kernels::dot(grow, &vx.data()[r * n..(r + 1) * n]);
                        }
                    }
                });
                sink.accum(1, ma, n, &mut |dx| {
                    for gi in 0..groups.len() {
                        let (r0, r1) = groups.range(gi);
                        let grow = g.row_slice(gi);
                        for r in r0..r1 {
                            let wv = vw.data()[r];
                            for (d, &s) in dx[r * n..(r + 1) * n].iter_mut().zip(grow) {
                                *d += wv * s;
                            }
                        }
                    }
                });
            })),
        )
    }

    /// Per-group softmax down a packed column: `x: [ΣT, 1]` → `[ΣT, 1]`
    /// where each group's segment is softmaxed independently (the batched
    /// form of the token-attention head's score normalization).
    pub fn softmax_col_grouped(&self, x: Var, groups: &RowGroups) -> Var {
        let vx = self.value(x);
        let (ma, n) = vx.shape();
        assert_eq!(n, 1, "softmax_col_grouped expects a [m, 1] column, got {ma}x{n}");
        assert_eq!(groups.total(), ma, "softmax_col_grouped: groups cover {} rows, got {ma}", groups.total());
        let mut out = pool::take_uninit(ma);
        out.copy_from_slice(vx.data());
        for gi in 0..groups.len() {
            let (r0, r1) = groups.range(gi);
            if r1 > r0 {
                kernels::scaled_softmax_in_place(&mut out[r0..r1], 1.0);
            }
        }
        let out = Tensor::from_vec(ma, 1, out);
        let p = out.clone();
        let groups = groups.clone();
        self.push("softmax_col_grouped",
            out,
            vec![x.0],
            Some(Box::new(move |g, sink| {
                sink.accum(0, ma, 1, &mut |dx| {
                    for gi in 0..groups.len() {
                        let (r0, r1) = groups.range(gi);
                        let gs = &g.data()[r0..r1];
                        let ps = &p.data()[r0..r1];
                        let s = kernels::dot(gs, ps);
                        for ((d, &gv), &pv) in dx[r0..r1].iter_mut().zip(gs).zip(ps) {
                            *d += pv * (gv - s);
                        }
                    }
                });
            })),
        )
    }

    /// Inverted dropout: with probability `p` an element is zeroed, surviving
    /// elements are scaled by `1/(1-p)`. `p = 0` records a cheap identity
    /// node.
    ///
    /// The mask is never materialized: one `u64` seed is drawn from `rng` per
    /// node and a xorshift64* stream derived from it decides keep/drop while
    /// the scaled copy is written in a single pass. The backward pass replays
    /// the same stream over the upstream gradient, so the only saved state is
    /// the seed.
    pub fn dropout<R: Rng + ?Sized>(&self, a: Var, p: f32, rng: &mut R) -> Var {
        assert!((0.0..1.0).contains(&p), "dropout probability must be in [0, 1), got {p}");
        if p == 0.0 {
            // Identity; still record a node so callers can treat train/eval
            // uniformly.
            let out = self.value(a);
            return self.push("dropout",
                out,
                vec![a.0],
                Some(Box::new(|g, sink| sink.add(0, g.clone()))),
            );
        }
        let va = self.value(a);
        let keep = 1.0 - p;
        let scale = 1.0 / keep;
        let seed = rng.next_u64() | 1; // xorshift state must be non-zero
        let (rows, cols) = va.shape();
        let mut out = pool::take_uninit(va.len());
        let mut state = seed;
        for (o, &x) in out.iter_mut().zip(va.data()) {
            *o = if xorshift_unit(&mut state) < keep { x * scale } else { 0.0 };
        }
        let out = Tensor::from_vec(rows, cols, out);
        self.push("dropout",
            out,
            vec![a.0],
            Some(Box::new(move |g, sink| {
                let mut dx = pool::take_uninit(g.len());
                let mut state = seed;
                for (o, &gi) in dx.iter_mut().zip(g.data()) {
                    *o = if xorshift_unit(&mut state) < keep { gi * scale } else { 0.0 };
                }
                sink.add(0, Tensor::from_vec(g.rows(), g.cols(), dx));
            })),
        )
    }

    // ----- losses --------------------------------------------------------------------

    /// Mean cross-entropy between row logits and integer class targets.
    ///
    /// `logits` is `[m, C]`; `targets` has length `m` with values `< C`.
    pub fn cross_entropy(&self, logits: Var, targets: &[usize]) -> Var {
        self.cross_entropy_weighted(logits, targets, None)
    }

    /// Cross-entropy with optional per-class weights (used to reproduce
    /// DeepMatcher's positive/negative class weighting). The loss is the
    /// weighted mean `Σ w_yi · nll_i / Σ w_yi`.
    pub fn cross_entropy_weighted(
        &self,
        logits: Var,
        targets: &[usize],
        class_weights: Option<&[f32]>,
    ) -> Var {
        let vx = self.value(logits);
        let (m, c) = vx.shape();
        assert_eq!(targets.len(), m, "cross_entropy: {m} logit rows but {} targets", targets.len());
        if let Some(w) = class_weights {
            assert_eq!(w.len(), c, "cross_entropy: {c} classes but {} class weights", w.len());
        }

        // Stable log-softmax + NLL, plus the softmax probabilities for the
        // backward pass.
        let mut probs = vec![0.0f32; m * c];
        let mut loss = 0.0f64;
        let mut weight_sum = 0.0f64;
        let mut sample_w = vec![0.0f32; m];
        for r in 0..m {
            let row = vx.row_slice(r);
            let t = targets[r];
            assert!(t < c, "cross_entropy: target {t} out of range for {c} classes");
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let lse = row.iter().map(|&x| (x - max).exp()).sum::<f32>().ln() + max;
            for (o, &x) in probs[r * c..(r + 1) * c].iter_mut().zip(row) {
                *o = (x - lse).exp();
            }
            let w = class_weights.map_or(1.0, |ws| ws[t]);
            sample_w[r] = w;
            loss += f64::from(w) * f64::from(lse - row[t]);
            weight_sum += f64::from(w);
        }
        let weight_sum = weight_sum.max(f64::EPSILON);
        let out = Tensor::scalar((loss / weight_sum) as f32);
        let probs = Tensor::from_vec(m, c, probs);
        let targets = targets.to_vec();
        let inv_wsum = (1.0 / weight_sum) as f32;
        self.push("cross_entropy",
            out,
            vec![logits.0],
            Some(Box::new(move |g, sink| {
                let scale = g.item() * inv_wsum;
                let mut dx = probs.clone();
                {
                    let data = dx.data_mut();
                    for (r, &t) in targets.iter().enumerate() {
                        let w = sample_w[r];
                        for cc in 0..c {
                            let onehot = if cc == t { 1.0 } else { 0.0 };
                            data[r * c + cc] = w * scale * (data[r * c + cc] - onehot);
                        }
                    }
                }
                sink.add(0, dx);
            })),
        )
    }

    /// Mean binary cross-entropy with logits. `logits` is `[m, 1]`; `targets`
    /// holds `m` values in `[0, 1]`.
    ///
    /// Uses the standard stable formulation
    /// `max(z, 0) - z·y + ln(1 + e^(-|z|))`.
    pub fn bce_with_logits(&self, logits: Var, targets: &[f32]) -> Var {
        let vx = self.value(logits);
        let (m, n) = vx.shape();
        assert_eq!(n, 1, "bce_with_logits expects [m, 1] logits, got {m}x{n}");
        assert_eq!(targets.len(), m, "bce_with_logits: {m} logits but {} targets", targets.len());
        let mut loss = 0.0f64;
        for (r, &y) in targets.iter().enumerate() {
            let z = vx.get(r, 0);
            loss += f64::from(z.max(0.0) - z * y + (-z.abs()).exp().ln_1p());
        }
        let out = Tensor::scalar((loss / m as f64) as f32);
        let targets = targets.to_vec();
        self.push("bce_with_logits",
            out,
            vec![logits.0],
            Some(Box::new(move |g, sink| {
                let scale = g.item() / m as f32;
                let dx = (0..m)
                    .map(|r| {
                        let z = vx.get(r, 0);
                        let p = 1.0 / (1.0 + (-z).exp());
                        scale * (p - targets[r])
                    })
                    .collect();
                sink.add(0, Tensor::from_vec(m, 1, dx));
            })),
        )
    }

    // ----- backward ------------------------------------------------------------------

    /// Runs reverse-mode differentiation from the scalar `root`.
    ///
    /// # Panics
    ///
    /// Panics if `root` is not a `[1, 1]` tensor.
    pub fn backward(&self, root: Var) -> Gradients {
        let nodes = self.nodes.borrow();
        assert_eq!(
            nodes[root.0].value.shape(),
            (1, 1),
            "backward root must be a scalar"
        );
        let mut grads: Vec<Option<Tensor>> = vec![None; nodes.len()];
        grads[root.0] = Some(Tensor::scalar(1.0));

        // Profiler: re-arm the self-time mark so setup cost between the last
        // forward op and this sweep is not billed to the first backward op.
        let prof_on = prof::enabled();
        if prof_on {
            prof::set_mark();
        }
        for idx in (0..=root.0).rev() {
            let Some(g) = grads[idx].take() else { continue };
            let node = &nodes[idx];
            if let Some(backward) = &node.backward {
                let parents = &node.parents;
                let mut sink = TapeSink { parents, grads: &mut grads };
                backward(&g, &mut sink);
                if prof_on {
                    let mut grad_bytes = 0u64;
                    let parent_shapes: Vec<(usize, usize)> = parents
                        .iter()
                        .map(|&p| {
                            let shape = nodes[p].value.shape();
                            grad_bytes += 4 * (shape.0 * shape.1) as u64;
                            shape
                        })
                        .collect();
                    // Backward of a node costs roughly two forward passes
                    // (one product per parent for GEMM-family ops).
                    let flops =
                        2 * prof::estimate_flops(node.op, &parent_shapes, node.value.shape());
                    prof::record_op(node.op, true, grad_bytes, flops);
                }
            }
            grads[idx] = Some(g);
        }
        Gradients { grads }
    }

    /// Consumes the tape and hands every uniquely-owned forward buffer back
    /// to the scratch [`pool`], so the next example's tape allocates nothing.
    ///
    /// Backward closures hold `Arc` clones of saved activations, so they are
    /// all dropped before any value is offered to the pool; leaf values that
    /// are still shared (parameters, cached inputs) are left untouched.
    pub fn recycle(self) {
        let mut nodes = self.nodes.into_inner();
        for node in &mut nodes {
            node.backward = None;
        }
        for node in nodes {
            node.value.recycle();
        }
    }
}

/// Copies the leading `w` columns of `t` rows starting at packed row `r0` of
/// a row-major `[_, stride]` buffer into contiguous `[t, w]` scratch.
fn gather_prefix(src: &[f32], r0: usize, t: usize, stride: usize, w: usize, dst: &mut [f32]) {
    for r in 0..t {
        dst[r * w..(r + 1) * w]
            .copy_from_slice(&src[(r0 + r) * stride..(r0 + r) * stride + w]);
    }
}

/// Adds a contiguous `[t, w]` block into rows `r0..r0+t`, columns `0..w` of a
/// row-major `[_, stride]` buffer.
fn scatter_add_prefix(src: &[f32], r0: usize, t: usize, stride: usize, w: usize, dst: &mut [f32]) {
    for r in 0..t {
        let s = &src[r * w..(r + 1) * w];
        let d = &mut dst[(r0 + r) * stride..(r0 + r) * stride + w];
        for (dv, &sv) in d.iter_mut().zip(s) {
            *dv += sv;
        }
    }
}

/// Copies a contiguous `[t, w]` block into rows `r0..r0+t`, columns `0..w` of
/// a row-major `[_, stride]` buffer (padding columns are left untouched).
fn scatter_copy_prefix(src: &[f32], r0: usize, t: usize, stride: usize, w: usize, dst: &mut [f32]) {
    for r in 0..t {
        dst[(r0 + r) * stride..(r0 + r) * stride + w].copy_from_slice(&src[r * w..(r + 1) * w]);
    }
}

/// Jacobian-vector product of a row softmax: `dx = p ⊙ (g − rowdot(g, p))`,
/// computed into a pooled scratch buffer.
fn softmax_rows_backward(g: &Tensor, p: &Tensor) -> Tensor {
    let (m, n) = g.shape();
    let mut dx = pool::take_uninit(m * n);
    kernels::softmax_rows_backward_scaled(m, n, g.data(), p.data(), 1.0, &mut dx);
    Tensor::from_vec(m, n, dx)
}

/// `x · w + bias` into a single pooled buffer: the blocked GEMM writes the
/// product and the bias row is folded in without materializing an
/// intermediate tensor or recording a separate tape node.
fn affine_forward(x: &Tensor, w: &Tensor, bias: &Tensor) -> Tensor {
    let (m, k) = x.shape();
    let n = w.cols();
    assert_eq!(
        k,
        w.rows(),
        "linear: {}x{} · {}x{} inner dimensions disagree",
        m,
        k,
        w.rows(),
        n
    );
    assert_eq!(bias.shape(), (1, n), "linear: bias must be [1,{n}]");
    let mut out = pool::take_uninit(m * n);
    backend::gemm_nn(m, k, n, x.data(), w.data(), &mut out);
    for row in out.chunks_exact_mut(n.max(1)) {
        for (o, &b) in row.iter_mut().zip(bias.data()) {
            *o += b;
        }
    }
    Tensor::from_vec(m, n, out)
}

/// Column sums of `g` as a `[1, n]` row (the bias gradient).
fn col_sums(g: &Tensor) -> Tensor {
    let (m, n) = g.shape();
    let mut out = pool::take(n);
    for r in 0..m {
        for (o, &v) in out.iter_mut().zip(g.row_slice(r)) {
            *o += v;
        }
    }
    Tensor::from_vec(1, n, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn approx(a: f32, b: f32) -> bool {
        (a - b).abs() <= 1e-4 * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn linear_chain_gradient() {
        // loss = sum(2 * x) -> d/dx = 2 everywhere.
        let g = Graph::new();
        let x = g.leaf(Tensor::from_rows(&[&[1.0, -2.0], &[3.0, 4.0]]));
        let y = g.scale(x, 2.0);
        let loss = g.sum_all(y);
        let grads = g.backward(loss);
        assert_eq!(grads.get(x).unwrap().data(), &[2.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn leaf_concat_rows_packs_cached_tensors() {
        // Tensors from a previous (recycled) tape re-enter as one leaf.
        let old = Graph::new();
        let a = old.value(old.leaf(Tensor::from_rows(&[&[1.0, 2.0]])));
        let b = old.value(old.leaf(Tensor::from_rows(&[&[3.0, 4.0], &[5.0, 6.0]])));
        old.recycle();
        let g = Graph::new();
        let packed = g.leaf_concat_rows(&[&a, &b]);
        assert_eq!(g.shape(packed), (3, 2));
        assert_eq!(g.value(packed).data(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn fanout_accumulates_gradients() {
        // loss = sum(x + x) -> d/dx = 2.
        let g = Graph::new();
        let x = g.leaf(Tensor::ones(1, 3));
        let y = g.add(x, x);
        let loss = g.sum_all(y);
        let grads = g.backward(loss);
        assert_eq!(grads.get(x).unwrap().data(), &[2.0, 2.0, 2.0]);
    }

    #[test]
    fn mul_product_rule() {
        let g = Graph::new();
        let a = g.leaf(Tensor::row(&[2.0, 3.0]));
        let b = g.leaf(Tensor::row(&[5.0, 7.0]));
        let y = g.mul(a, b);
        let loss = g.sum_all(y);
        let grads = g.backward(loss);
        assert_eq!(grads.get(a).unwrap().data(), &[5.0, 7.0]);
        assert_eq!(grads.get(b).unwrap().data(), &[2.0, 3.0]);
    }

    #[test]
    fn matmul_gradients_match_formulas() {
        let g = Graph::new();
        let a = g.leaf(Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]));
        let b = g.leaf(Tensor::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]));
        let c = g.matmul(a, b);
        let loss = g.sum_all(c);
        let grads = g.backward(loss);
        // dA = 1 · Bᵀ, dB = Aᵀ · 1
        assert_eq!(grads.get(a).unwrap().data(), &[11.0, 15.0, 11.0, 15.0]);
        assert_eq!(grads.get(b).unwrap().data(), &[4.0, 4.0, 6.0, 6.0]);
    }

    #[test]
    fn cross_entropy_perfect_prediction_has_small_loss() {
        let g = Graph::new();
        let logits = g.leaf(Tensor::from_rows(&[&[10.0, -10.0], &[-10.0, 10.0]]));
        let loss = g.cross_entropy(logits, &[0, 1]);
        assert!(g.value(loss).item() < 1e-3);
    }

    #[test]
    fn cross_entropy_uniform_logits_is_log_c() {
        let g = Graph::new();
        let logits = g.leaf(Tensor::zeros(3, 4));
        let loss = g.cross_entropy(logits, &[0, 1, 2]);
        assert!(approx(g.value(loss).item(), (4.0f32).ln()));
    }

    #[test]
    fn cross_entropy_gradient_is_softmax_minus_onehot() {
        let g = Graph::new();
        let logits = g.leaf(Tensor::zeros(1, 2));
        let loss = g.cross_entropy(logits, &[1]);
        let grads = g.backward(loss);
        let dl = grads.get(logits).unwrap();
        assert!(approx(dl.get(0, 0), 0.5));
        assert!(approx(dl.get(0, 1), -0.5));
    }

    #[test]
    fn weighted_cross_entropy_upweights_class() {
        let g = Graph::new();
        let logits = g.leaf(Tensor::from_rows(&[&[0.0, 0.0], &[0.0, 0.0]]));
        // Class 1 has weight 3: loss stays ln(2) (weighted mean of equal
        // per-sample losses), but gradients tilt toward the upweighted class.
        let loss = g.cross_entropy_weighted(logits, &[0, 1], Some(&[1.0, 3.0]));
        assert!(approx(g.value(loss).item(), (2.0f32).ln()));
        let grads = g.backward(loss);
        let dl = grads.get(logits).unwrap();
        assert!(dl.get(1, 1).abs() > dl.get(0, 0).abs());
    }

    #[test]
    fn bce_with_logits_matches_closed_form() {
        let g = Graph::new();
        let logits = g.leaf(Tensor::column(&[0.0]));
        let loss = g.bce_with_logits(logits, &[1.0]);
        assert!(approx(g.value(loss).item(), (2.0f32).ln()));
        let grads = g.backward(loss);
        assert!(approx(grads.get(logits).unwrap().item(), -0.5));
    }

    #[test]
    fn bce_is_stable_for_extreme_logits() {
        let g = Graph::new();
        let logits = g.leaf(Tensor::column(&[500.0, -500.0]));
        let loss = g.bce_with_logits(logits, &[1.0, 0.0]);
        let v = g.value(loss).item();
        assert!(v.is_finite() && v < 1e-3);
    }

    #[test]
    fn embedding_scatter_adds_duplicate_ids() {
        let g = Graph::new();
        let w = g.leaf(Tensor::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]));
        let e = g.embedding(w, &[1, 1, 2]);
        let loss = g.sum_all(e);
        let grads = g.backward(loss);
        let dw = grads.get(w).unwrap();
        assert_eq!(dw.row_slice(0), &[0.0, 0.0]);
        assert_eq!(dw.row_slice(1), &[2.0, 2.0]); // used twice
        assert_eq!(dw.row_slice(2), &[1.0, 1.0]);
    }

    #[test]
    fn dropout_zero_probability_is_identity() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = Graph::new();
        let x = g.leaf(Tensor::row(&[1.0, 2.0, 3.0]));
        let y = g.dropout(x, 0.0, &mut rng);
        assert_eq!(g.value(y).data(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn dropout_preserves_expectation_roughly() {
        let mut rng = StdRng::seed_from_u64(42);
        let g = Graph::new();
        let x = g.leaf(Tensor::full(1, 10_000, 1.0));
        let y = g.dropout(x, 0.3, &mut rng);
        let mean = g.value(y).mean();
        assert!((mean - 1.0).abs() < 0.05, "dropout mean {mean} drifted from 1.0");
    }

    #[test]
    fn layer_norm_output_is_normalized() {
        let g = Graph::new();
        let x = g.leaf(Tensor::from_rows(&[&[1.0, 2.0, 3.0, 4.0]]));
        let gamma = g.leaf(Tensor::ones(1, 4));
        let beta = g.leaf(Tensor::zeros(1, 4));
        let y = g.layer_norm(x, gamma, beta);
        let v = g.value(y);
        assert!(approx(v.mean(), 0.0));
        let var = v.data().iter().map(|&x| x * x).sum::<f32>() / 4.0;
        assert!((var - 1.0).abs() < 1e-3);
    }

    #[test]
    fn softmax_grad_sums_to_zero_per_row() {
        // Because softmax outputs sum to 1, the gradient of any function of
        // the outputs wrt the inputs must sum to zero across each row.
        let g = Graph::new();
        let x = g.leaf(Tensor::from_rows(&[&[0.3, -1.2, 2.0]]));
        let p = g.softmax_rows(x);
        let w = g.leaf(Tensor::row(&[1.0, -2.0, 0.5]));
        let y = g.mul(p, w);
        let loss = g.sum_all(y);
        let grads = g.backward(loss);
        let dx = grads.get(x).unwrap();
        assert!(dx.data().iter().sum::<f32>().abs() < 1e-5);
    }

    #[test]
    fn slice_and_concat_gradients_route_correctly() {
        let g = Graph::new();
        let x = g.leaf(Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]));
        let top = g.slice_rows(x, 0, 1);
        let rest = g.slice_rows(x, 1, 3);
        let doubled = g.scale(rest, 2.0);
        let all = g.concat_rows(&[top, doubled]);
        let loss = g.sum_all(all);
        let grads = g.backward(loss);
        let dx = grads.get(x).unwrap();
        assert_eq!(dx.data(), &[1.0, 1.0, 2.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "backward root must be a scalar")]
    fn backward_requires_scalar_root() {
        let g = Graph::new();
        let x = g.leaf(Tensor::ones(2, 2));
        let _ = g.backward(x);
    }
}
