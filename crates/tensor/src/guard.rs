//! Debug-only non-finite guard for the autodiff tape.
//!
//! When enabled, every tensor recorded on a [`crate::Graph`] is scanned for
//! NaN/Inf right after its forward kernel runs, and offenders are reported
//! with the *op name* that produced them — turning "the loss is NaN five
//! layers later" into "`linear_bias_gelu` emitted a non-finite `[32, 128]`
//! output". The guard is off by default because the scan adds a full pass
//! over every activation; training harnesses flip it on per run (see
//! `TrainConfig::nan_guard` in `emba-core`) and drain the reports through
//! their observer.
//!
//! Like the scratch [`crate::pool`], the guard is thread-local: the engine is
//! single-threaded per training run, so there is no cross-thread state to
//! synchronize and concurrent test runs cannot see each other's reports.

use std::cell::{Cell, RefCell};

/// Cap on buffered reports; a genuinely divergent run produces a non-finite
/// output at essentially every node, and one screenful is plenty.
const MAX_REPORTS: usize = 64;

/// One non-finite op output caught by the guard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GuardReport {
    /// Name of the tape op that produced the value (e.g. `"softmax_rows"`).
    pub op: &'static str,
    /// Rows of the offending output.
    pub rows: usize,
    /// Columns of the offending output.
    pub cols: usize,
}

thread_local! {
    static ENABLED: Cell<bool> = const { Cell::new(false) };
    static REPORTS: RefCell<Vec<GuardReport>> = const { RefCell::new(Vec::new()) };
}

/// Turns the guard on or off for this thread; returns the previous state so
/// callers can restore it (guard scopes nest).
pub fn enable(on: bool) -> bool {
    ENABLED.with(|e| e.replace(on))
}

/// Whether the guard is currently checking op outputs on this thread.
pub fn enabled() -> bool {
    ENABLED.with(Cell::get)
}

/// Records a non-finite op output. Called by the tape; reports beyond
/// [`MAX_REPORTS`] are dropped.
pub fn record(op: &'static str, rows: usize, cols: usize) {
    REPORTS.with(|r| {
        let mut r = r.borrow_mut();
        if r.len() < MAX_REPORTS {
            r.push(GuardReport { op, rows, cols });
        }
    });
}

/// Drains every buffered report, oldest first.
pub fn take_reports() -> Vec<GuardReport> {
    REPORTS.with(|r| std::mem::take(&mut *r.borrow_mut()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Graph, Tensor};

    #[test]
    fn disabled_guard_records_nothing() {
        take_reports();
        assert!(!enabled());
        let g = Graph::new();
        let x = g.leaf(Tensor::row(&[f32::NAN]));
        let _ = g.scale(x, 2.0);
        assert!(take_reports().is_empty());
    }

    #[test]
    fn enabled_guard_names_the_offending_op() {
        let prev = enable(true);
        take_reports();
        let g = Graph::new();
        let x = g.leaf(Tensor::row(&[1.0, 2.0]));
        let y = g.scale(x, f32::INFINITY);
        let _ = g.sum_all(y);
        enable(prev);
        let reports = take_reports();
        assert!(
            reports.iter().any(|r| r.op == "scale" && r.rows == 1 && r.cols == 2),
            "expected a report for `scale`, got {reports:?}"
        );
    }

    #[test]
    fn nan_leaves_are_caught_too() {
        let prev = enable(true);
        take_reports();
        let g = Graph::new();
        let _ = g.leaf(Tensor::row(&[f32::NAN]));
        enable(prev);
        assert!(take_reports().iter().any(|r| r.op == "leaf"));
    }

    #[test]
    fn report_buffer_is_capped() {
        let prev = enable(true);
        take_reports();
        let g = Graph::new();
        for _ in 0..(MAX_REPORTS + 16) {
            let _ = g.leaf(Tensor::row(&[f32::NAN]));
        }
        enable(prev);
        assert_eq!(take_reports().len(), MAX_REPORTS);
    }
}
