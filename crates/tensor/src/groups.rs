//! Row-group descriptors for batched (row-packed) execution.
//!
//! The batched forward path packs several variable-length sequences into one
//! `[ΣT, H]` activation matrix with no padding between rows. A [`RowGroups`]
//! value records where each sequence's rows live inside the packed matrix, so
//! grouped tape ops (block-diagonal attention, masked softmax, per-group
//! reductions) can treat each sequence independently without materializing a
//! mask tensor.

use std::sync::Arc;

/// Partition of the rows of a packed matrix into consecutive groups.
///
/// Stored as `G + 1` offsets (`offsets[0] == 0`, strictly increasing is not
/// required — empty groups are legal for degenerate inputs, though the model
/// code never produces them). Cloning is O(1); backward closures capture
/// clones freely.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowGroups {
    offsets: Arc<Vec<usize>>,
}

impl RowGroups {
    /// Builds groups from per-group row counts.
    pub fn from_lens(lens: &[usize]) -> Self {
        let mut offsets = Vec::with_capacity(lens.len() + 1);
        let mut total = 0;
        offsets.push(0);
        for &l in lens {
            total += l;
            offsets.push(total);
        }
        Self { offsets: Arc::new(offsets) }
    }

    /// Number of groups.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Whether there are no groups.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of packed rows (`ΣT`).
    pub fn total(&self) -> usize {
        *self.offsets.last().unwrap()
    }

    /// Row range `[start, end)` of group `i`.
    pub fn range(&self, i: usize) -> (usize, usize) {
        (self.offsets[i], self.offsets[i + 1])
    }

    /// Number of rows in group `i`.
    pub fn len_of(&self, i: usize) -> usize {
        self.offsets[i + 1] - self.offsets[i]
    }

    /// First row of group `i` (group starts double as the packed positions of
    /// the per-sequence CLS tokens).
    pub fn start(&self, i: usize) -> usize {
        self.offsets[i]
    }

    /// Largest group length (the padded width `W` of grouped score/softmax
    /// matrices).
    pub fn max_len(&self) -> usize {
        (0..self.len()).map(|i| self.len_of(i)).max().unwrap_or(0)
    }

    /// Per-group row counts.
    pub fn lens(&self) -> Vec<usize> {
        (0..self.len()).map(|i| self.len_of(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_lens_round_trips() {
        let g = RowGroups::from_lens(&[3, 1, 4]);
        assert_eq!(g.len(), 3);
        assert_eq!(g.total(), 8);
        assert_eq!(g.range(0), (0, 3));
        assert_eq!(g.range(1), (3, 4));
        assert_eq!(g.range(2), (4, 8));
        assert_eq!(g.max_len(), 4);
        assert_eq!(g.lens(), vec![3, 1, 4]);
    }

    #[test]
    fn single_group_covers_all_rows() {
        let g = RowGroups::from_lens(&[7]);
        assert_eq!(g.len(), 1);
        assert_eq!(g.total(), 7);
        assert_eq!(g.max_len(), 7);
    }
}
