//! Post-training int8 quantization of linear weights.
//!
//! Scheme:
//!
//! * **Weights** are quantized once per matrix, per *output channel*
//!   (column), symmetric: `scale_j = max_i |W[i,j]| / 127`, `q[i,j] =
//!   round(W[i,j] / scale_j)`. An all-zero column gets `scale_j = 1.0` and
//!   quantizes to exact zeros. Storage is column-major so the integer GEMM
//!   streams each column contiguously. The per-column sums of the
//!   quantized weights are precomputed — they absorb the activation
//!   zero-points below.
//! * **Activations** are quantized per row at runtime, *asymmetric* u8:
//!   `s = (max - min) / 255`, `zp = round(-min / s)`, `q = clamp(round(x /
//!   s) + zp, 0, 255)`. Asymmetric matters: GELU outputs and other
//!   one-sided transformer activations would waste half the levels under a
//!   symmetric scheme, doubling the error. Unsigned activations are also
//!   exactly what `vpdpbusd` multiplies natively.
//! * Accumulation is exact i32; the zero-point unfolds through the
//!   precomputed column sums without touching the inner loop:
//!   `x · W[:,j] ≈ s * scale_j * (acc_j - zp * colsum_j)`, evaluated in
//!   exact i64 before one f32 rescale, plus the bias and optionally a
//!   fused GELU.
//! * A row whose spread is negligible relative to its magnitude (including
//!   the all-zero row) cannot be represented affinely — it short-circuits
//!   to the exact `c * scale_j * colsum_j + bias_j` closed form.
//!
//! Error bound: each weight lands within `scale_j / 2 = max|W[:,j]| / 254`
//! of its f32 value; each activation within one step `(max - min) / 255`
//! (the clamp at the extremes can cost slightly over a half-step). A
//! length-k dot therefore deviates by at most
//! `k * (e_x * max|w| + e_w * max|x| + e_x * e_w)` with those per-element
//! bounds — checked directly by `tests/prop_quant.rs`.
//!
//! Execution tiles rows in blocks: quantize a block of rows, run one
//! integer GEMM over the whole block (amortizing each streamed weight
//! column across the block), then rescale into the output buffer.

use crate::pool;
use crate::simd;
use crate::tensor::Tensor;

/// A linear weight matrix quantized to int8 with per-output-channel scales.
///
/// Built once (at checkpoint restore or on first quantized forward) and
/// shared immutably afterwards.
#[derive(Debug)]
pub struct QuantizedMatrix {
    in_dim: usize,
    out_dim: usize,
    /// Column-major: `data[j * in_dim + i]` holds quantized `W[i, j]`.
    data: Vec<i8>,
    /// One dequantization scale per output channel.
    scales: Vec<f32>,
    /// Per-column sums of the quantized weights, `sum_i data[j*k + i]` —
    /// the activation zero-point correction term.
    col_sums: Vec<i32>,
}

impl QuantizedMatrix {
    /// Quantize a `(in_dim, out_dim)` f32 weight matrix.
    pub fn quantize(w: &Tensor) -> Self {
        let (k, n) = w.shape();
        let src = w.data();
        let mut data = vec![0i8; k * n];
        let mut scales = vec![1.0f32; n];
        let mut col_sums = vec![0i32; n];
        for j in 0..n {
            let mut max_abs = 0.0f32;
            for i in 0..k {
                max_abs = max_abs.max(src[i * n + j].abs());
            }
            // An all-zero channel keeps scale 1.0 and quantizes to zeros.
            if max_abs > 0.0 {
                scales[j] = max_abs / 127.0;
                let inv = 127.0 / max_abs;
                let col = &mut data[j * k..(j + 1) * k];
                let mut sum = 0i32;
                for (i, q) in col.iter_mut().enumerate() {
                    *q = (src[i * n + j] * inv).round().clamp(-127.0, 127.0) as i8;
                    sum += *q as i32;
                }
                col_sums[j] = sum;
            }
        }
        QuantizedMatrix {
            in_dim: k,
            out_dim: n,
            data,
            scales,
            col_sums,
        }
    }

    /// Input (row) dimension.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output (column) dimension.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Per-output-channel dequantization scales.
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// Per-column sums of the quantized weights.
    pub fn col_sums(&self) -> &[i32] {
        &self.col_sums
    }

    /// Reconstruct the f32 matrix (`q[i,j] * scale_j`) — test/debug helper
    /// for the round-trip property tests.
    pub fn dequantize(&self) -> Tensor {
        let (k, n) = (self.in_dim, self.out_dim);
        let mut out = vec![0.0f32; k * n];
        for j in 0..n {
            let s = self.scales[j];
            for i in 0..k {
                out[i * n + j] = self.data[j * k + i] as f32 * s;
            }
        }
        Tensor::from_vec(k, n, out)
    }
}

/// How one activation row was quantized.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RowQuant {
    /// `x[i] ≈ (q[i] - zp) * scale`.
    Affine {
        /// Quantization step, `(max - min) / 255`.
        scale: f32,
        /// Zero point (can be negative when the whole row is positive).
        zp: i32,
    },
    /// The row is (numerically) constant — the affine form would overflow
    /// or degenerate, so the forward uses the exact closed form instead.
    Constant(f32),
}

/// Asymmetric per-row activation quantization into `q`.
pub fn quantize_row_u8(x: &[f32], q: &mut [u8]) -> RowQuant {
    debug_assert_eq!(x.len(), q.len());
    let (mn, mx) = simd::min_max(x);
    let mag = mn.abs().max(mx.abs());
    let spread = mx - mn;
    // Near-constant rows (spread negligible vs magnitude) would push the
    // zero point past i32 range; all-zero rows hit this with spread == 0.
    if spread <= mag * 1e-6 {
        q.fill(0);
        return RowQuant::Constant((mn + mx) * 0.5);
    }
    let scale = spread / 255.0;
    let inv = 255.0 / spread;
    let zp = (-mn * inv).round_ties_even() as i32;
    simd::quantize_span_u8(x, inv, zp, q);
    RowQuant::Affine { scale, zp }
}

/// Rows per quantize-GEMM-rescale block: big enough to amortize streaming
/// the weight matrix across rows, small enough that the u8/i32 scratch
/// stays L1/L2-resident.
const ROW_BLOCK: usize = 32;

/// Quantized affine forward: `out ≈ x @ W + bias`, with an optional fused
/// GELU. `x` is `(m, k)`, `w` is a quantized `(k, n)` matrix, `bias` is
/// `(1, n)`.
pub fn linear_q8_forward(x: &Tensor, w: &QuantizedMatrix, bias: &Tensor, gelu: bool) -> Tensor {
    let (m, k) = x.shape();
    let n = w.out_dim;
    assert_eq!(k, w.in_dim, "linear_q8: inner dims {k} vs {}", w.in_dim);
    assert_eq!(bias.shape(), (1, n), "linear_q8: bias shape");
    let xs = x.data();
    let bs = bias.data();
    let mut out = pool::take_uninit(m * n);
    let mb = ROW_BLOCK.min(m.max(1));
    let mut qbuf = vec![0u8; mb * k];
    let mut acc = vec![0i32; mb * n];
    let mut rows: Vec<RowQuant> = Vec::with_capacity(mb);
    let mut rb = 0;
    while rb < m {
        let bm = mb.min(m - rb);
        rows.clear();
        for r in 0..bm {
            let xrow = &xs[(rb + r) * k..(rb + r + 1) * k];
            rows.push(quantize_row_u8(xrow, &mut qbuf[r * k..(r + 1) * k]));
        }
        simd::gemm_u8i8(&qbuf[..bm * k], bm, &w.data, k, n, &mut acc[..bm * n]);
        for (r, rq) in rows.iter().enumerate() {
            let orow = &mut out[(rb + r) * n..(rb + r + 1) * n];
            match *rq {
                RowQuant::Constant(c) => {
                    for j in 0..n {
                        orow[j] = c * (w.scales[j] * w.col_sums[j] as f32) + bs[j];
                    }
                }
                RowQuant::Affine { scale: sx, zp } => {
                    let arow = &acc[r * n..(r + 1) * n];
                    for j in 0..n {
                        let adj = arow[j] as i64 - zp as i64 * w.col_sums[j] as i64;
                        orow[j] = adj as f32 * (sx * w.scales[j]) + bs[j];
                    }
                }
            }
            if gelu {
                simd::gelu_span(orow);
            }
        }
        rb += bm;
    }
    Tensor::from_vec(m, n, out)
}
