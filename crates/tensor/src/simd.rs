//! Cached CPU-feature detection and explicit `std::arch` micro-kernels.
//!
//! Detection runs once per process (`is_x86_feature_detected!` walks CPUID
//! every call, which is far too slow for a per-GEMM decision) and is cached
//! in an atomic. A forced-scalar override — seeded from the
//! `EMBA_FORCE_SCALAR` environment variable and togglable in-process via
//! [`set_forced_scalar`] — lets CI and the quantization bench exercise the
//! portable fallback on any machine, and lets a single bench process measure
//! both paths interleaved on the same core.
//!
//! Three kernel families live here:
//!
//! * quantized GEMM ([`gemm_u8i8`]): the workhorse of the int8 backend.
//!   Activations are *unsigned* (asymmetric per-row quantization, see
//!   `crate::quant`), weights signed — exactly the operand pair
//!   `vpdpbusd` (AVX-VNNI) fuses into one multiply-widen-accumulate. The
//!   plain-AVX2 tier must NOT use the tempting `_mm256_maddubs_epi16`
//!   shortcut: with u8 activations a pair sum reaches `2 * 255 * 127 =
//!   64770 > i16::MAX` and saturates silently. It instead widens both
//!   operands to i16 and uses `_mm256_madd_epi16`, which pair-sums into
//!   i32 exactly. Every tier therefore computes the same exact integer
//!   dot and all tiers are bit-identical.
//! * activation quantization ([`quantize_span_u8`]): the min/max pass and
//!   the scale-round-clamp pass, both vectorized — at transformer widths
//!   the scalar version costs as much as the GEMM it feeds.
//! * f32 micro-kernel ([`micro_kernel_f32_avx2`]): an explicit AVX2+FMA
//!   twin of the autovectorized `kernels::micro_kernel`, operating on the
//!   same packed MR x NR panels.
//!
//! Rounding contract: all tiers round ties-to-even (`vcvtps2dq`'s default
//! mode; `f32::round_ties_even` in the scalar fallback) so forced-scalar
//! runs reproduce SIMD runs bit-for-bit.

use std::sync::atomic::{AtomicU8, Ordering};

/// Instruction-set tier selected for kernel dispatch, best first.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Portable fallback; also what `EMBA_FORCE_SCALAR` pins.
    Scalar,
    /// AVX2 (+FMA for f32): widen-and-`madd_epi16` integer dot products.
    Avx2,
    /// AVX2 plus AVX-VNNI `vpdpbusd` fused u8xi8 dot-accumulate.
    Avx2Vnni,
}

impl Level {
    /// Stable lower-case label used in bench reports and backend names.
    pub fn name(self) -> &'static str {
        match self {
            Level::Scalar => "scalar",
            Level::Avx2 => "avx2",
            Level::Avx2Vnni => "avx2+vnni",
        }
    }
}

const DETECT_UNKNOWN: u8 = 0;
const DETECT_SCALAR: u8 = 1;
const DETECT_AVX2: u8 = 2;
const DETECT_AVX2_VNNI: u8 = 3;

static DETECTED: AtomicU8 = AtomicU8::new(DETECT_UNKNOWN);

const FORCE_UNKNOWN: u8 = 0;
const FORCE_OFF: u8 = 1;
const FORCE_ON: u8 = 2;

static FORCED_SCALAR: AtomicU8 = AtomicU8::new(FORCE_UNKNOWN);

#[cfg(target_arch = "x86_64")]
fn detect() -> u8 {
    if is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma") {
        if is_x86_feature_detected!("avxvnni") {
            DETECT_AVX2_VNNI
        } else {
            DETECT_AVX2
        }
    } else {
        DETECT_SCALAR
    }
}

#[cfg(not(target_arch = "x86_64"))]
fn detect() -> u8 {
    DETECT_SCALAR
}

/// The best tier this CPU supports, detected once and cached.
pub fn detected() -> Level {
    match DETECTED.load(Ordering::Relaxed) {
        DETECT_UNKNOWN => {
            let d = detect();
            DETECTED.store(d, Ordering::Relaxed);
            decode(d)
        }
        d => decode(d),
    }
}

fn decode(d: u8) -> Level {
    match d {
        DETECT_AVX2 => Level::Avx2,
        DETECT_AVX2_VNNI => Level::Avx2Vnni,
        _ => Level::Scalar,
    }
}

/// Whether the scalar fallback is currently forced (env or programmatic).
pub fn forced_scalar() -> bool {
    match FORCED_SCALAR.load(Ordering::Relaxed) {
        FORCE_UNKNOWN => {
            let on = std::env::var("EMBA_FORCE_SCALAR")
                .map(|v| !v.is_empty() && v != "0" && !v.eq_ignore_ascii_case("false"))
                .unwrap_or(false);
            FORCED_SCALAR.store(if on { FORCE_ON } else { FORCE_OFF }, Ordering::Relaxed);
            on
        }
        f => f == FORCE_ON,
    }
}

/// Override the forced-scalar knob in-process (benches interleave both
/// paths on the same core; tests pin the portable path deterministically).
pub fn set_forced_scalar(on: bool) {
    FORCED_SCALAR.store(if on { FORCE_ON } else { FORCE_OFF }, Ordering::Relaxed);
}

/// The tier kernels actually dispatch on: [`detected`] unless scalar is
/// forced.
pub fn level() -> Level {
    if forced_scalar() {
        Level::Scalar
    } else {
        detected()
    }
}

// ---------------------------------------------------------------------------
// Activation quantization: q[i] = clamp(round_even(x[i] * inv) + zp, 0, 255)
// ---------------------------------------------------------------------------

/// Quantizes a span of activations with a precomputed affine transform.
/// The caller guarantees `x[i] * inv + zp` stays far inside i32 range (the
/// per-row scale construction in `crate::quant` bounds it by ~2^28).
pub fn quantize_span_u8(x: &[f32], inv: f32, zp: i32, q: &mut [u8]) {
    debug_assert_eq!(x.len(), q.len());
    match level() {
        #[cfg(target_arch = "x86_64")]
        Level::Avx2 | Level::Avx2Vnni => unsafe { quantize_span_u8_avx2(x, inv, zp, q) },
        _ => quantize_span_u8_scalar(x, inv, zp, q),
    }
}

/// Portable twin of the SIMD quantization pass — ties-to-even rounding so
/// the two are bit-identical.
pub fn quantize_span_u8_scalar(x: &[f32], inv: f32, zp: i32, q: &mut [u8]) {
    for (qi, &v) in q.iter_mut().zip(x) {
        *qi = ((v * inv).round_ties_even() as i32 + zp).clamp(0, 255) as u8;
    }
}

/// `(min, max)` over a span. min/max are exact and order-independent, so
/// the vectorized and scalar reductions agree bit-for-bit.
pub fn min_max(x: &[f32]) -> (f32, f32) {
    match level() {
        #[cfg(target_arch = "x86_64")]
        Level::Avx2 | Level::Avx2Vnni if x.len() >= 8 => unsafe { min_max_avx2(x) },
        _ => min_max_scalar(x),
    }
}

fn min_max_scalar(x: &[f32]) -> (f32, f32) {
    let mut mn = f32::INFINITY;
    let mut mx = f32::NEG_INFINITY;
    for &v in x {
        mn = mn.min(v);
        mx = mx.max(v);
    }
    (mn, mx)
}

// ---------------------------------------------------------------------------
// Fast GELU for the quantized forward path
// ---------------------------------------------------------------------------

// The exact graph op evaluates libm `tanh` per element, which dominates the
// feed-forward blocks. The int8 path is approximate by construction, so its
// fused activation uses a vectorizable tanh: range-reduce `e^{2|u|}` through
// `2^n * e^g` with `g in [-ln2/2, ln2/2]` and a degree-5 polynomial. The
// polynomial's relative error is ~3e-6, putting the GELU output within
// ~2e-6 * |x| of the exact op — far below the int8 backend's documented
// probability tolerance. The scalar twin below IS the definition; the AVX2
// kernel mirrors it lane-for-lane (same FMA contractions, same
// ties-to-even rounding, IEEE mul/add/div/min/abs), so tiers stay
// bit-identical.

/// Matches `graph::GELU_C` — sqrt(2/pi).
const GELU_C: f32 = 0.797_884_6;
/// Matches `graph::GELU_K` — the cubic term of the tanh GELU.
const GELU_K: f32 = 0.044_715;
/// `2 * log2(e)`: folds the `2u` of `tanh(u) = 1 - 2/(e^{2u}+1)` into the
/// base-2 range reduction.
const TWO_LOG2E: f32 = 2.0 * std::f32::consts::LOG2_E;
/// Clamp on the base-2 exponent argument: `tanh` saturates to 1 within f32
/// long before `2^25`.
const EXP2_ARG_MAX: f32 = 25.0;
const LN2: f32 = std::f32::consts::LN_2;

/// One element of the fast GELU — the portable definition the SIMD tiers
/// reproduce exactly.
#[inline]
pub fn fast_gelu(x: f32) -> f32 {
    let x2 = x * x;
    let u = GELU_C * GELU_K.mul_add(x2 * x, x);
    // e^{2|u|} = 2^n * e^{g}, n integral, g in [-ln2/2, ln2/2].
    let z = (u.abs() * TWO_LOG2E).min(EXP2_ARG_MAX);
    let n = z.round_ties_even();
    let g = (z - n) * LN2;
    let p = (1.0 / 120.0f32)
        .mul_add(g, 1.0 / 24.0)
        .mul_add(g, 1.0 / 6.0)
        .mul_add(g, 0.5)
        .mul_add(g, 1.0)
        .mul_add(g, 1.0);
    let e2a = p * f32::from_bits(((n as i32 + 127) as u32) << 23);
    let t = 1.0 - 2.0 / (e2a + 1.0);
    // tanh is odd: restore u's sign bit, then the usual 0.5x(1 + tanh).
    let ts = f32::from_bits(t.to_bits() ^ (u.to_bits() & 0x8000_0000));
    (0.5 * x) * (1.0 + ts)
}

/// In-place fast GELU over a span, SIMD-dispatched.
pub fn gelu_span(x: &mut [f32]) {
    match level() {
        #[cfg(target_arch = "x86_64")]
        Level::Avx2 | Level::Avx2Vnni if x.len() >= 8 => unsafe { gelu_span_avx2(x) },
        _ => gelu_span_scalar(x),
    }
}

/// Portable twin of the SIMD GELU pass, bit-identical by construction.
pub fn gelu_span_scalar(x: &mut [f32]) {
    for v in x.iter_mut() {
        *v = fast_gelu(*v);
    }
}

// ---------------------------------------------------------------------------
// Quantized GEMM: acc[r*n + j] = sum_i a[r*k + i] * w[j*k + i]
//   a: m x k row-major u8 activations, w: column-major i8 weights
// ---------------------------------------------------------------------------

/// Exact integer GEMM between quantized activations (`m` rows of length
/// `k`, unsigned) and a column-major i8 weight matrix (`n` columns of
/// length `k`). Accumulation is exact i32, so every tier is bit-identical.
pub fn gemm_u8i8(a: &[u8], m: usize, w: &[i8], k: usize, n: usize, acc: &mut [i32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(w.len(), k * n);
    debug_assert_eq!(acc.len(), m * n);
    match level() {
        #[cfg(target_arch = "x86_64")]
        Level::Avx2 => unsafe { gemm_u8i8_avx2(a, m, w, k, n, acc) },
        #[cfg(target_arch = "x86_64")]
        Level::Avx2Vnni => unsafe { gemm_u8i8_vnni(a, m, w, k, n, acc) },
        _ => gemm_u8i8_scalar(a, m, w, k, n, acc),
    }
}

/// Portable reference implementation; also the dispatch target when
/// `EMBA_FORCE_SCALAR` pins the scalar tier.
pub fn gemm_u8i8_scalar(a: &[u8], m: usize, w: &[i8], k: usize, n: usize, acc: &mut [i32]) {
    for r in 0..m {
        let row = &a[r * k..(r + 1) * k];
        let out = &mut acc[r * n..(r + 1) * n];
        for (j, o) in out.iter_mut().enumerate() {
            let col = &w[j * k..(j + 1) * k];
            let mut s = 0i32;
            for i in 0..k {
                s += row[i] as i32 * col[i] as i32;
            }
            *o = s;
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use std::arch::x86_64::*;

    /// Horizontal sum of the eight i32 lanes.
    #[inline]
    #[target_feature(enable = "avx2")]
    pub unsafe fn hsum_epi32(v: __m256i) -> i32 {
        let hi = _mm256_extracti128_si256(v, 1);
        let lo = _mm256_castsi256_si128(v);
        let s = _mm_add_epi32(hi, lo);
        let s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0b00_01_10_11));
        let s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0b00_00_00_01));
        _mm_cvtsi128_si32(s)
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn min_max_avx2(x: &[f32]) -> (f32, f32) {
        let mut vmn = _mm256_set1_ps(f32::INFINITY);
        let mut vmx = _mm256_set1_ps(f32::NEG_INFINITY);
        let kc = x.len() - x.len() % 8;
        let p = x.as_ptr();
        let mut i = 0;
        while i < kc {
            let v = _mm256_loadu_ps(p.add(i));
            vmn = _mm256_min_ps(vmn, v);
            vmx = _mm256_max_ps(vmx, v);
            i += 8;
        }
        let mut mn = [0.0f32; 8];
        let mut mx = [0.0f32; 8];
        _mm256_storeu_ps(mn.as_mut_ptr(), vmn);
        _mm256_storeu_ps(mx.as_mut_ptr(), vmx);
        let mut lo = f32::INFINITY;
        let mut hi = f32::NEG_INFINITY;
        for l in 0..8 {
            lo = lo.min(mn[l]);
            hi = hi.max(mx[l]);
        }
        while i < x.len() {
            let v = *x.get_unchecked(i);
            lo = lo.min(v);
            hi = hi.max(v);
            i += 1;
        }
        (lo, hi)
    }

    /// Vectorized affine quantization: 8 floats -> 8 u8 per step via
    /// `vcvtps2dq` (ties-even, matching the scalar `round_ties_even`) and
    /// the saturating i32 -> i16 -> u8 packs, which implement the
    /// `[0, 255]` clamp for free.
    #[target_feature(enable = "avx2")]
    pub unsafe fn quantize_span_u8_avx2(x: &[f32], inv: f32, zp: i32, q: &mut [u8]) {
        let vinv = _mm256_set1_ps(inv);
        let vzp = _mm256_set1_epi32(zp);
        let kc = x.len() - x.len() % 8;
        let xp = x.as_ptr();
        let qp = q.as_mut_ptr();
        let mut i = 0;
        while i < kc {
            let v = _mm256_mul_ps(_mm256_loadu_ps(xp.add(i)), vinv);
            let qi = _mm256_add_epi32(_mm256_cvtps_epi32(v), vzp);
            let lo = _mm256_castsi256_si128(qi);
            let hi = _mm256_extracti128_si256(qi, 1);
            let p16 = _mm_packs_epi32(lo, hi);
            let p8 = _mm_packus_epi16(p16, p16);
            _mm_storel_epi64(qp.add(i) as *mut __m128i, p8);
            i += 8;
        }
        while i < x.len() {
            *qp.add(i) =
                ((*xp.add(i) * inv).round_ties_even() as i32 + zp).clamp(0, 255) as u8;
            i += 1;
        }
    }

    /// Lane-parallel twin of [`super::fast_gelu`]: identical FMA
    /// contractions, `vroundps` ties-even, and IEEE mul/add/div/min/abs,
    /// so each lane reproduces the scalar result bit-for-bit.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn gelu_span_avx2(x: &mut [f32]) {
        let vc = _mm256_set1_ps(super::GELU_C);
        let vk = _mm256_set1_ps(super::GELU_K);
        let v2l = _mm256_set1_ps(super::TWO_LOG2E);
        let vmax = _mm256_set1_ps(super::EXP2_ARG_MAX);
        let vln2 = _mm256_set1_ps(super::LN2);
        let c5 = _mm256_set1_ps(1.0 / 120.0);
        let c4 = _mm256_set1_ps(1.0 / 24.0);
        let c3 = _mm256_set1_ps(1.0 / 6.0);
        let half = _mm256_set1_ps(0.5);
        let one = _mm256_set1_ps(1.0);
        let two = _mm256_set1_ps(2.0);
        let bias = _mm256_set1_epi32(127);
        let abs_mask = _mm256_castsi256_ps(_mm256_set1_epi32(0x7fff_ffff));
        let sign_mask = _mm256_castsi256_ps(_mm256_set1_epi32(u32::MAX as i32 ^ 0x7fff_ffff));
        let kc = x.len() - x.len() % 8;
        let p = x.as_mut_ptr();
        let mut i = 0;
        while i < kc {
            let xv = _mm256_loadu_ps(p.add(i));
            let x2 = _mm256_mul_ps(xv, xv);
            let u = _mm256_mul_ps(vc, _mm256_fmadd_ps(vk, _mm256_mul_ps(x2, xv), xv));
            let z = _mm256_min_ps(_mm256_mul_ps(_mm256_and_ps(u, abs_mask), v2l), vmax);
            let n = _mm256_round_ps(z, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
            let g = _mm256_mul_ps(_mm256_sub_ps(z, n), vln2);
            let pe = _mm256_fmadd_ps(c5, g, c4);
            let pe = _mm256_fmadd_ps(pe, g, c3);
            let pe = _mm256_fmadd_ps(pe, g, half);
            let pe = _mm256_fmadd_ps(pe, g, one);
            let pe = _mm256_fmadd_ps(pe, g, one);
            let exp2n = _mm256_castsi256_ps(_mm256_slli_epi32(
                _mm256_add_epi32(_mm256_cvtps_epi32(n), bias),
                23,
            ));
            let e2a = _mm256_mul_ps(pe, exp2n);
            let t = _mm256_sub_ps(one, _mm256_div_ps(two, _mm256_add_ps(e2a, one)));
            let ts = _mm256_xor_ps(t, _mm256_and_ps(u, sign_mask));
            let out = _mm256_mul_ps(_mm256_mul_ps(half, xv), _mm256_add_ps(one, ts));
            _mm256_storeu_ps(p.add(i), out);
            i += 8;
        }
        while i < x.len() {
            *p.add(i) = super::fast_gelu(*p.add(i));
            i += 1;
        }
    }

    /// AVX2 (no VNNI) u8xi8 GEMM tile: widen both operands to i16 and use
    /// `madd_epi16`, whose pairwise i32 sums are exact — `maddubs` would
    /// saturate at u8 range. Two rows x four columns per tile.
    ///
    /// # Safety
    /// Requires AVX2; `a` must be `m * k` row-major, `w` `n * k`
    /// column-major, `acc` `m * n`.
    #[allow(clippy::needless_range_loop)] // `c` indexes the register tile in lockstep with the column offset
    #[target_feature(enable = "avx2")]
    pub unsafe fn gemm_u8i8_avx2(a: &[u8], m: usize, w: &[i8], k: usize, n: usize, acc: &mut [i32]) {
        let kc = k - k % 16;
        let mut r = 0;
        while r < m {
            let pair = r + 1 < m;
            let a0 = a.as_ptr().add(r * k);
            let a1 = if pair { a.as_ptr().add((r + 1) * k) } else { a0 };
            let mut j = 0;
            while j + 4 <= n {
                let mut s = [[_mm256_setzero_si256(); 4]; 2];
                let mut i = 0;
                while i < kc {
                    let va0 = _mm256_cvtepu8_epi16(_mm_loadu_si128(a0.add(i) as *const __m128i));
                    let va1 = if pair {
                        _mm256_cvtepu8_epi16(_mm_loadu_si128(a1.add(i) as *const __m128i))
                    } else {
                        va0
                    };
                    for c in 0..4 {
                        let wp = w.as_ptr().add((j + c) * k + i);
                        let vw = _mm256_cvtepi8_epi16(_mm_loadu_si128(wp as *const __m128i));
                        s[0][c] = _mm256_add_epi32(s[0][c], _mm256_madd_epi16(va0, vw));
                        s[1][c] = _mm256_add_epi32(s[1][c], _mm256_madd_epi16(va1, vw));
                    }
                    i += 16;
                }
                for c in 0..4 {
                    let mut t0 = hsum_epi32(s[0][c]);
                    let mut t1 = hsum_epi32(s[1][c]);
                    let wp = w.as_ptr().add((j + c) * k);
                    let mut i = kc;
                    while i < k {
                        let wv = *wp.add(i) as i32;
                        t0 += *a0.add(i) as i32 * wv;
                        t1 += *a1.add(i) as i32 * wv;
                        i += 1;
                    }
                    *acc.get_unchecked_mut(r * n + j + c) = t0;
                    if pair {
                        *acc.get_unchecked_mut((r + 1) * n + j + c) = t1;
                    }
                }
                j += 4;
            }
            // Remainder columns (AOA/head projections have n = 1 or 2).
            while j < n {
                let wp = w.as_ptr().add(j * k);
                let mut s0 = _mm256_setzero_si256();
                let mut s1 = _mm256_setzero_si256();
                let mut i = 0;
                while i < kc {
                    let vw = _mm256_cvtepi8_epi16(_mm_loadu_si128(wp.add(i) as *const __m128i));
                    let va0 = _mm256_cvtepu8_epi16(_mm_loadu_si128(a0.add(i) as *const __m128i));
                    s0 = _mm256_add_epi32(s0, _mm256_madd_epi16(va0, vw));
                    if pair {
                        let va1 =
                            _mm256_cvtepu8_epi16(_mm_loadu_si128(a1.add(i) as *const __m128i));
                        s1 = _mm256_add_epi32(s1, _mm256_madd_epi16(va1, vw));
                    }
                    i += 16;
                }
                let mut t0 = hsum_epi32(s0);
                let mut t1 = hsum_epi32(s1);
                while i < k {
                    let wv = *wp.add(i) as i32;
                    t0 += *a0.add(i) as i32 * wv;
                    t1 += *a1.add(i) as i32 * wv;
                    i += 1;
                }
                *acc.get_unchecked_mut(r * n + j) = t0;
                if pair {
                    *acc.get_unchecked_mut((r + 1) * n + j) = t1;
                }
                j += 1;
            }
            r += 2;
        }
    }

    /// AVX-VNNI u8xi8 GEMM tile: `vpdpbusd` takes unsigned x signed bytes
    /// natively and accumulates into i32 in one instruction. Two rows x
    /// four columns per tile.
    ///
    /// # Safety
    /// Requires AVX2 and AVX-VNNI; `a` must be `m * k` row-major, `w`
    /// `n * k` column-major, `acc` `m * n`.
    #[allow(clippy::needless_range_loop)] // `c` indexes the register tile in lockstep with the column offset
    #[target_feature(enable = "avx2,avxvnni")]
    pub unsafe fn gemm_u8i8_vnni(a: &[u8], m: usize, w: &[i8], k: usize, n: usize, acc: &mut [i32]) {
        let kc = k - k % 32;
        let mut r = 0;
        while r < m {
            let pair = r + 1 < m;
            let a0 = a.as_ptr().add(r * k);
            let a1 = if pair { a.as_ptr().add((r + 1) * k) } else { a0 };
            let mut j = 0;
            while j + 4 <= n {
                let mut s = [[_mm256_setzero_si256(); 4]; 2];
                let mut i = 0;
                while i < kc {
                    let va0 = _mm256_loadu_si256(a0.add(i) as *const __m256i);
                    let va1 = if pair {
                        _mm256_loadu_si256(a1.add(i) as *const __m256i)
                    } else {
                        va0
                    };
                    for c in 0..4 {
                        let wp = w.as_ptr().add((j + c) * k + i);
                        let vw = _mm256_loadu_si256(wp as *const __m256i);
                        s[0][c] = _mm256_dpbusd_avx_epi32(s[0][c], va0, vw);
                        s[1][c] = _mm256_dpbusd_avx_epi32(s[1][c], va1, vw);
                    }
                    i += 32;
                }
                for c in 0..4 {
                    let mut t0 = hsum_epi32(s[0][c]);
                    let mut t1 = hsum_epi32(s[1][c]);
                    let wp = w.as_ptr().add((j + c) * k);
                    let mut i = kc;
                    while i < k {
                        let wv = *wp.add(i) as i32;
                        t0 += *a0.add(i) as i32 * wv;
                        t1 += *a1.add(i) as i32 * wv;
                        i += 1;
                    }
                    *acc.get_unchecked_mut(r * n + j + c) = t0;
                    if pair {
                        *acc.get_unchecked_mut((r + 1) * n + j + c) = t1;
                    }
                }
                j += 4;
            }
            while j < n {
                let wp = w.as_ptr().add(j * k);
                let mut s0 = _mm256_setzero_si256();
                let mut s1 = _mm256_setzero_si256();
                let mut i = 0;
                while i < kc {
                    let vw = _mm256_loadu_si256(wp.add(i) as *const __m256i);
                    let va0 = _mm256_loadu_si256(a0.add(i) as *const __m256i);
                    s0 = _mm256_dpbusd_avx_epi32(s0, va0, vw);
                    if pair {
                        let va1 = _mm256_loadu_si256(a1.add(i) as *const __m256i);
                        s1 = _mm256_dpbusd_avx_epi32(s1, va1, vw);
                    }
                    i += 32;
                }
                let mut t0 = hsum_epi32(s0);
                let mut t1 = hsum_epi32(s1);
                while i < k {
                    let wv = *wp.add(i) as i32;
                    t0 += *a0.add(i) as i32 * wv;
                    t1 += *a1.add(i) as i32 * wv;
                    i += 1;
                }
                *acc.get_unchecked_mut(r * n + j) = t0;
                if pair {
                    *acc.get_unchecked_mut((r + 1) * n + j) = t1;
                }
                j += 1;
            }
            r += 2;
        }
    }

    /// Explicit AVX2+FMA twin of `kernels::micro_kernel`: rank-1 updates of a
    /// 4 x 16 register block from packed panels (`a` strided by MR=4, `b` by
    /// NR=16).
    ///
    /// # Safety
    /// Requires AVX2+FMA; `a` must hold `kc * 4` and `b` `kc * 16` packed
    /// elements.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn micro_kernel_f32_avx2(kc: usize, a: &[f32], b: &[f32], acc: &mut [[f32; 16]; 4]) {
        let mut c00 = _mm256_setzero_ps();
        let mut c01 = _mm256_setzero_ps();
        let mut c10 = _mm256_setzero_ps();
        let mut c11 = _mm256_setzero_ps();
        let mut c20 = _mm256_setzero_ps();
        let mut c21 = _mm256_setzero_ps();
        let mut c30 = _mm256_setzero_ps();
        let mut c31 = _mm256_setzero_ps();
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        for p in 0..kc {
            let b0 = _mm256_loadu_ps(bp.add(p * 16));
            let b1 = _mm256_loadu_ps(bp.add(p * 16 + 8));
            let a0 = _mm256_broadcast_ss(&*ap.add(p * 4));
            let a1 = _mm256_broadcast_ss(&*ap.add(p * 4 + 1));
            let a2 = _mm256_broadcast_ss(&*ap.add(p * 4 + 2));
            let a3 = _mm256_broadcast_ss(&*ap.add(p * 4 + 3));
            c00 = _mm256_fmadd_ps(a0, b0, c00);
            c01 = _mm256_fmadd_ps(a0, b1, c01);
            c10 = _mm256_fmadd_ps(a1, b0, c10);
            c11 = _mm256_fmadd_ps(a1, b1, c11);
            c20 = _mm256_fmadd_ps(a2, b0, c20);
            c21 = _mm256_fmadd_ps(a2, b1, c21);
            c30 = _mm256_fmadd_ps(a3, b0, c30);
            c31 = _mm256_fmadd_ps(a3, b1, c31);
        }
        let rows = [[c00, c01], [c10, c11], [c20, c21], [c30, c31]];
        for (r, pair) in rows.iter().enumerate() {
            let dst = acc[r].as_mut_ptr();
            _mm256_storeu_ps(dst, _mm256_add_ps(_mm256_loadu_ps(dst), pair[0]));
            _mm256_storeu_ps(dst.add(8), _mm256_add_ps(_mm256_loadu_ps(dst.add(8)), pair[1]));
        }
    }
}

#[cfg(target_arch = "x86_64")]
use x86::{gelu_span_avx2, gemm_u8i8_avx2, gemm_u8i8_vnni, min_max_avx2, quantize_span_u8_avx2};
#[cfg(target_arch = "x86_64")]
pub use x86::micro_kernel_f32_avx2;

#[cfg(test)]
mod tests {
    use super::*;

    fn ref_gemm(a: &[u8], m: usize, w: &[i8], k: usize, n: usize) -> Vec<i32> {
        let mut out = vec![0i32; m * n];
        for r in 0..m {
            for j in 0..n {
                out[r * n + j] = (0..k)
                    .map(|i| a[r * k + i] as i32 * w[j * k + i] as i32)
                    .sum();
            }
        }
        out
    }

    #[test]
    fn gemm_tiers_match_reference_exactly() {
        let mut state = 0x1234_5678u32;
        let mut next = move || {
            state = state.wrapping_mul(1664525).wrapping_add(1013904223);
            state >> 16
        };
        // Hit the 2x4 main tile, the single-row and remainder-column edges,
        // and the scalar k-tail — with the 255 x ±127 corners that would
        // expose a saturating maddubs shortcut.
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (2, 31, 3),
            (3, 32, 4),
            (5, 64, 7),
            (4, 133, 6),
            (7, 16, 9),
        ] {
            let mut a: Vec<u8> = (0..m * k).map(|_| (next() % 256) as u8).collect();
            let mut w: Vec<i8> = (0..k * n).map(|_| (next() as i32 % 255 - 127) as i8).collect();
            a[0] = 255;
            w[0] = -127;
            if k > 1 {
                a[1] = 255;
                w[1] = -127;
            }
            let expect = ref_gemm(&a, m, &w, k, n);
            let mut out = vec![0i32; m * n];
            gemm_u8i8_scalar(&a, m, &w, k, n, &mut out);
            assert_eq!(out, expect, "scalar m={m} k={k} n={n}");
            #[cfg(target_arch = "x86_64")]
            {
                if detected() >= Level::Avx2 {
                    let mut out = vec![0i32; m * n];
                    unsafe { gemm_u8i8_avx2(&a, m, &w, k, n, &mut out) };
                    assert_eq!(out, expect, "avx2 m={m} k={k} n={n}");
                }
                if detected() >= Level::Avx2Vnni {
                    let mut out = vec![0i32; m * n];
                    unsafe { gemm_u8i8_vnni(&a, m, &w, k, n, &mut out) };
                    assert_eq!(out, expect, "vnni m={m} k={k} n={n}");
                }
            }
        }
    }

    #[test]
    fn quantize_span_tiers_are_bit_identical() {
        let xs: Vec<f32> = (0..71)
            .map(|i| ((i * 37 % 101) as f32 - 50.0) * 0.173 + if i % 9 == 0 { 0.5 } else { 0.0 })
            .collect();
        // Include an exact .5 product to pin ties-to-even agreement and
        // values that clamp at both ends.
        let inv = 2.0f32;
        let zp = 12;
        let mut q_scalar = vec![0u8; xs.len()];
        quantize_span_u8_scalar(&xs, inv, zp, &mut q_scalar);
        #[cfg(target_arch = "x86_64")]
        if detected() >= Level::Avx2 {
            let mut q_simd = vec![0u8; xs.len()];
            unsafe { quantize_span_u8_avx2(&xs, inv, zp, &mut q_simd) };
            assert_eq!(q_scalar, q_simd);
        }
        let (mn, mx) = min_max(&xs);
        assert_eq!(min_max_scalar(&xs), (mn, mx));
    }

    fn exact_gelu(x: f32) -> f32 {
        let u = GELU_C * (x + GELU_K * x * x * x);
        0.5 * x * (1.0 + u.tanh())
    }

    #[test]
    fn fast_gelu_tracks_the_exact_op() {
        // Sweep the activation range the feed-forward blocks actually see,
        // plus deep tails where tanh saturates. The polynomial's error
        // budget is ~3e-6 relative on tanh, i.e. ~2e-6 * |x| on the output.
        let mut x = -30.0f32;
        while x <= 30.0 {
            let got = fast_gelu(x);
            let want = exact_gelu(x);
            let bound = 5e-6 * x.abs().max(1.0);
            assert!(
                (got - want).abs() <= bound,
                "fast_gelu({x}) = {got}, exact {want}, bound {bound}"
            );
            x += 0.0173;
        }
        assert_eq!(fast_gelu(0.0), 0.0);
        // Deep tails: tanh clamps at |t| = 1 - 6e-8, not exactly 1, so the
        // saturated branches still obey the relative bound.
        assert!(fast_gelu(-100.0).abs() <= 5e-6 * 100.0);
        assert!((fast_gelu(100.0) - 100.0).abs() <= 5e-6 * 100.0);
    }

    #[test]
    fn gelu_span_tiers_are_bit_identical() {
        let mut vals: Vec<f32> = Vec::new();
        let mut s = 0xdead_beefu32;
        for _ in 0..61 {
            s = s.wrapping_mul(1664525).wrapping_add(1013904223);
            vals.push(((s >> 16) as f32 / 4096.0) - 8.0);
        }
        vals.extend_from_slice(&[0.0, -0.0, 1e-20, -1e-20, 40.0, -40.0]);
        let mut fast = vals.clone();
        gelu_span(&mut fast);
        let mut scalar = vals.clone();
        let before = forced_scalar();
        set_forced_scalar(true);
        gelu_span(&mut scalar);
        set_forced_scalar(before);
        assert_eq!(fast.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                   scalar.iter().map(|v| v.to_bits()).collect::<Vec<_>>());
    }

    #[test]
    fn forced_scalar_pins_level() {
        let before = forced_scalar();
        set_forced_scalar(true);
        assert_eq!(level(), Level::Scalar);
        set_forced_scalar(before);
    }
}
