//! The dense matrix type and its raw (non-differentiable) kernels.

use std::fmt;
use std::sync::Arc;

use rand::Rng;
use serde::{Deserialize, Serialize, Value};

use crate::{backend, kernels, pool};

/// A dense, row-major matrix of `f32` values.
///
/// Every tensor in this crate is rank 2; vectors are represented as `[1, n]`
/// (row) or `[n, 1]` (column) matrices and scalars as `[1, 1]`. The buffer is
/// shared behind an [`Arc`], so `clone` is O(1) and mutation copies on write.
///
/// # Panics
///
/// Like most array programming libraries, shape mismatches are programming
/// errors and panic with a descriptive message rather than returning
/// `Result`; the checked constructor [`Tensor::try_from_vec`] is available at
/// API boundaries where data arrives from outside the program.
#[derive(Clone)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Arc<Vec<f32>>,
}

impl Serialize for Tensor {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("rows".to_string(), self.rows.to_value()),
            ("cols".to_string(), self.cols.to_value()),
            ("data".to_string(), self.data.to_value()),
        ])
    }
}

/// Hand-written so the shape×length invariant is *validated*, not assumed.
///
/// A derived impl would accept any `{rows, cols, data}` triple, and a
/// hand-edited or bit-flipped snapshot whose `data` is shorter than
/// `rows * cols` would drive the blocked kernels (which index by shape, not
/// by buffer length) out of bounds. Deserialization therefore rejects any
/// tree where `data.len() != rows * cols`, including shapes whose element
/// count overflows `usize`.
impl Deserialize for Tensor {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        let field = |name: &str| {
            v.get(name)
                .ok_or_else(|| serde::Error::custom(format!("Tensor: missing field `{name}`")))
        };
        let rows = usize::from_value(field("rows")?)?;
        let cols = usize::from_value(field("cols")?)?;
        let data = Vec::<f32>::from_value(field("data")?)?;
        let expected = rows.checked_mul(cols).ok_or_else(|| {
            serde::Error::custom(format!("Tensor: shape {rows}x{cols} overflows usize"))
        })?;
        if data.len() != expected {
            return Err(serde::Error::custom(format!(
                "Tensor: buffer of {} values does not fill shape {rows}x{cols} ({expected} elements)",
                data.len()
            )));
        }
        Ok(Self { rows, cols, data: Arc::new(data) })
    }
}

impl Tensor {
    /// Creates a tensor of the given shape filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Self {
            rows,
            cols,
            data: Arc::new(vec![value; rows * cols]),
        }
    }

    /// Creates a zero-filled tensor.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self::full(rows, cols, 0.0)
    }

    /// Creates a one-filled tensor.
    pub fn ones(rows: usize, cols: usize) -> Self {
        Self::full(rows, cols, 1.0)
    }

    /// Creates a `[1, 1]` scalar tensor.
    pub fn scalar(value: f32) -> Self {
        Self::full(1, 1, value)
    }

    /// Creates a tensor from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        Self::try_from_vec(rows, cols, data).expect("buffer length must equal rows * cols")
    }

    /// Checked variant of [`Tensor::from_vec`].
    pub fn try_from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self, ShapeError> {
        if data.len() != rows * cols {
            return Err(ShapeError {
                expected: rows * cols,
                actual: data.len(),
            });
        }
        Ok(Self {
            rows,
            cols,
            data: Arc::new(data),
        })
    }

    /// Creates a tensor from a slice of row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have differing lengths or `rows` is empty.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        assert!(!rows.is_empty(), "from_rows requires at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r.len(), cols, "row {i} has length {} but row 0 has {cols}", r.len());
            data.extend_from_slice(r);
        }
        Self::from_vec(rows.len(), cols, data)
    }

    /// Creates a `[1, n]` row vector.
    pub fn row(values: &[f32]) -> Self {
        Self::from_vec(1, values.len(), values.to_vec())
    }

    /// Creates an `[n, 1]` column vector.
    pub fn column(values: &[f32]) -> Self {
        Self::from_vec(values.len(), 1, values.to_vec())
    }

    /// Samples every element uniformly from `[-limit, limit)`.
    pub fn rand_uniform<R: Rng + ?Sized>(rows: usize, cols: usize, limit: f32, rng: &mut R) -> Self {
        let data = (0..rows * cols)
            .map(|_| rng.gen_range(-limit..limit))
            .collect();
        Self::from_vec(rows, cols, data)
    }

    /// Xavier/Glorot uniform initialization for a weight matrix with
    /// `rows` inputs and `cols` outputs.
    pub fn xavier<R: Rng + ?Sized>(rows: usize, cols: usize, rng: &mut R) -> Self {
        let limit = (6.0 / (rows + cols) as f32).sqrt();
        Self::rand_uniform(rows, cols, limit, rng)
    }

    /// Samples every element from a normal distribution via Box–Muller.
    pub fn rand_normal<R: Rng + ?Sized>(
        rows: usize,
        cols: usize,
        mean: f32,
        std: f32,
        rng: &mut R,
    ) -> Self {
        let data = (0..rows * cols)
            .map(|_| {
                let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
                let u2: f32 = rng.gen_range(0.0..1.0);
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos();
                mean + std * z
            })
            .collect();
        Self::from_vec(rows, cols, data)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.rows * self.cols
    }

    /// Whether the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The flat row-major buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the buffer, copying if it is shared.
    pub fn data_mut(&mut self) -> &mut [f32] {
        Arc::make_mut(&mut self.data).as_mut_slice()
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of bounds for {}x{}", self.rows, self.cols);
        self.data[r * self.cols + c]
    }

    /// Sets the element at `(r, c)`, copying the buffer if shared.
    pub fn set(&mut self, r: usize, c: usize, value: f32) {
        assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of bounds for {}x{}", self.rows, self.cols);
        let cols = self.cols;
        self.data_mut()[r * cols + c] = value;
    }

    /// The single value of a `[1, 1]` tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not a scalar.
    pub fn item(&self) -> f32 {
        assert_eq!(self.shape(), (1, 1), "item() requires a [1,1] tensor, got {}x{}", self.rows, self.cols);
        self.data[0]
    }

    /// Row `r` as a slice.
    #[inline]
    pub fn row_slice(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row {r} out of bounds for {} rows", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Iterator over row slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Reinterprets the buffer with a new shape of identical length.
    ///
    /// # Panics
    ///
    /// Panics if `rows * cols != self.len()`.
    pub fn reshape(&self, rows: usize, cols: usize) -> Self {
        assert_eq!(rows * cols, self.len(), "cannot reshape {}x{} into {rows}x{cols}", self.rows, self.cols);
        Self {
            rows,
            cols,
            data: Arc::clone(&self.data),
        }
    }

    /// Applies `f` to every element, producing a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Self {
        Self {
            rows: self.rows,
            cols: self.cols,
            data: Arc::new(self.data.iter().map(|&x| f(x)).collect()),
        }
    }

    /// Combines two same-shaped tensors elementwise.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Self {
        self.assert_same_shape(other, "zip");
        Self {
            rows: self.rows,
            cols: self.cols,
            data: Arc::new(
                self.data
                    .iter()
                    .zip(other.data.iter())
                    .map(|(&a, &b)| f(a, b))
                    .collect(),
            ),
        }
    }

    fn assert_same_shape(&self, other: &Tensor, op: &str) {
        assert_eq!(
            self.shape(),
            other.shape(),
            "{op}: shape mismatch {}x{} vs {}x{}",
            self.rows,
            self.cols,
            other.rows,
            other.cols
        );
    }

    /// Elementwise sum.
    pub fn add(&self, other: &Tensor) -> Self {
        self.zip(other, |a, b| a + b)
    }

    /// Elementwise difference.
    pub fn sub(&self, other: &Tensor) -> Self {
        self.zip(other, |a, b| a - b)
    }

    /// Elementwise (Hadamard) product.
    pub fn mul(&self, other: &Tensor) -> Self {
        self.zip(other, |a, b| a * b)
    }

    /// Multiplies every element by `s`.
    pub fn scale(&self, s: f32) -> Self {
        self.map(|x| x * s)
    }

    /// In-place `self *= s`, reusing the buffer when unshared.
    ///
    /// The gradient batch-average and clip paths run this once per parameter
    /// per optimizer step; the allocating [`Tensor::scale`] there would churn
    /// a fresh buffer each time and bypass the scratch [`pool`].
    pub fn scale_mut(&mut self, s: f32) {
        for v in self.data_mut() {
            *v *= s;
        }
    }

    /// In-place `self += other * s`, reusing the buffer when unshared.
    ///
    /// This is the accumulation primitive used by gradient aggregation and
    /// the optimizers, where avoiding a fresh allocation per parameter per
    /// step matters.
    pub fn add_scaled_in_place(&mut self, other: &Tensor, s: f32) {
        self.assert_same_shape(other, "add_scaled_in_place");
        let dst = self.data_mut();
        for (d, &o) in dst.iter_mut().zip(other.data.iter()) {
            *d += o * s;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.is_empty() {
            0.0
        } else {
            self.sum() / self.len() as f32
        }
    }

    /// Largest element (−∞ for an empty tensor).
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum::<f32>().sqrt()
    }

    /// Hands the underlying buffer back to the scratch [`pool`] if this was
    /// its last reference; a no-op for shared buffers (parameters,
    /// checkpointed values), which stay untouched.
    pub fn recycle(self) {
        if let Ok(buf) = Arc::try_unwrap(self.data) {
            pool::put(buf);
        }
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Self {
        let mut out = pool::take_uninit(self.len());
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        Self::from_vec(self.cols, self.rows, out)
    }

    /// Matrix product `self · other`.
    ///
    /// Routes through the blocked, panel-packed kernel in
    /// [`kernels`](crate::kernels); small products use a branch-free `ikj`
    /// loop whose inner body is a contiguous scaled-add the compiler
    /// vectorizes.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree.
    pub fn matmul(&self, other: &Tensor) -> Self {
        assert_eq!(
            self.cols, other.rows,
            "matmul: {}x{} · {}x{} inner dimensions disagree",
            self.rows, self.cols, other.rows, other.cols
        );
        let (m, k, n) = (self.rows, self.cols, other.cols);
        let mut out = pool::take_uninit(m * n);
        backend::gemm_nn(m, k, n, &self.data, &other.data, &mut out);
        Self::from_vec(m, n, out)
    }

    /// `self · otherᵀ` without materializing the transpose.
    pub fn matmul_nt(&self, other: &Tensor) -> Self {
        assert_eq!(
            self.cols, other.cols,
            "matmul_nt: {}x{} · ({}x{})ᵀ inner dimensions disagree",
            self.rows, self.cols, other.rows, other.cols
        );
        let (m, k, n) = (self.rows, self.cols, other.rows);
        let mut out = pool::take_uninit(m * n);
        backend::gemm_nt(m, k, n, &self.data, &other.data, &mut out);
        Self::from_vec(m, n, out)
    }

    /// `selfᵀ · other` without materializing the transpose.
    pub fn matmul_tn(&self, other: &Tensor) -> Self {
        assert_eq!(
            self.rows, other.rows,
            "matmul_tn: ({}x{})ᵀ · {}x{} inner dimensions disagree",
            self.rows, self.cols, other.rows, other.cols
        );
        let (m, k, n) = (self.cols, self.rows, other.cols);
        let mut out = pool::take_uninit(m * n);
        backend::gemm_tn(m, k, n, &self.data, &other.data, &mut out);
        Self::from_vec(m, n, out)
    }

    /// Numerically stable softmax applied independently to each row.
    pub fn softmax_rows(&self) -> Self {
        let mut out = self.data.as_ref().clone();
        for r in 0..self.rows {
            softmax_in_place(&mut out[r * self.cols..(r + 1) * self.cols]);
        }
        Self::from_vec(self.rows, self.cols, out)
    }

    /// Numerically stable softmax applied independently to each column.
    pub fn softmax_cols(&self) -> Self {
        let mut out = pool::take_uninit(self.len());
        let mut col = vec![0.0f32; self.rows];
        for c in 0..self.cols {
            for (r, v) in col.iter_mut().enumerate() {
                *v = self.data[r * self.cols + c];
            }
            softmax_in_place(&mut col);
            for (r, &v) in col.iter().enumerate() {
                out[r * self.cols + c] = v;
            }
        }
        Self::from_vec(self.rows, self.cols, out)
    }

    /// Mean over rows: `[m, n] -> [1, n]`.
    pub fn mean_axis0(&self) -> Self {
        let mut out = vec![0.0f32; self.cols];
        for r in 0..self.rows {
            for (o, &v) in out.iter_mut().zip(self.row_slice(r)) {
                *o += v;
            }
        }
        let inv = 1.0 / self.rows.max(1) as f32;
        for o in &mut out {
            *o *= inv;
        }
        Self::from_vec(1, self.cols, out)
    }

    /// Mean over columns: `[m, n] -> [m, 1]`.
    pub fn mean_axis1(&self) -> Self {
        let inv = 1.0 / self.cols.max(1) as f32;
        let out = (0..self.rows)
            .map(|r| self.row_slice(r).iter().sum::<f32>() * inv)
            .collect();
        Self::from_vec(self.rows, 1, out)
    }

    /// Index of the largest element in each row.
    pub fn argmax_rows(&self) -> Vec<usize> {
        (0..self.rows)
            .map(|r| {
                let row = self.row_slice(r);
                row.iter()
                    .enumerate()
                    .fold((0usize, f32::NEG_INFINITY), |(bi, bv), (i, &v)| {
                        if v > bv {
                            (i, v)
                        } else {
                            (bi, bv)
                        }
                    })
                    .0
            })
            .collect()
    }

    /// Returns the rows `[r0, r1)` as a new tensor.
    pub fn slice_rows(&self, r0: usize, r1: usize) -> Self {
        assert!(r0 <= r1 && r1 <= self.rows, "row slice {r0}..{r1} out of bounds for {} rows", self.rows);
        Self::from_vec(r1 - r0, self.cols, self.data[r0 * self.cols..r1 * self.cols].to_vec())
    }

    /// Returns the columns `[c0, c1)` as a new tensor.
    pub fn slice_cols(&self, c0: usize, c1: usize) -> Self {
        assert!(c0 <= c1 && c1 <= self.cols, "col slice {c0}..{c1} out of bounds for {} cols", self.cols);
        let w = c1 - c0;
        let mut out = Vec::with_capacity(self.rows * w);
        for r in 0..self.rows {
            out.extend_from_slice(&self.row_slice(r)[c0..c1]);
        }
        Self::from_vec(self.rows, w, out)
    }

    /// Stacks tensors with identical column counts vertically.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or the column counts differ.
    pub fn concat_rows(parts: &[&Tensor]) -> Self {
        assert!(!parts.is_empty(), "concat_rows requires at least one tensor");
        let cols = parts[0].cols;
        let rows = parts.iter().map(|t| t.rows).sum();
        let mut out = pool::take_uninit(rows * cols);
        let mut at = 0;
        for t in parts {
            assert_eq!(t.cols, cols, "concat_rows: column mismatch {} vs {cols}", t.cols);
            out[at..at + t.data.len()].copy_from_slice(&t.data);
            at += t.data.len();
        }
        Self::from_vec(rows, cols, out)
    }

    /// Stacks tensors with identical row counts horizontally.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or the row counts differ.
    pub fn concat_cols(parts: &[&Tensor]) -> Self {
        assert!(!parts.is_empty(), "concat_cols requires at least one tensor");
        let rows = parts[0].rows;
        let cols: usize = parts.iter().map(|t| t.cols).sum();
        let mut out = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for t in parts {
                assert_eq!(t.rows, rows, "concat_cols: row mismatch {} vs {rows}", t.rows);
                out.extend_from_slice(t.row_slice(r));
            }
        }
        Self::from_vec(rows, cols, out)
    }

    /// Whether every element is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor[{}x{}]", self.rows, self.cols)?;
        if self.len() <= 16 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

impl PartialEq for Tensor {
    fn eq(&self, other: &Self) -> bool {
        self.shape() == other.shape() && self.data == other.data
    }
}

/// Error returned by [`Tensor::try_from_vec`] when the buffer length does not
/// match the requested shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShapeError {
    /// `rows * cols` of the requested shape.
    pub expected: usize,
    /// Actual buffer length.
    pub actual: usize,
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "buffer length {} does not match shape ({} elements)", self.actual, self.expected)
    }
}

impl std::error::Error for ShapeError {}

fn softmax_in_place(xs: &mut [f32]) {
    if xs.is_empty() {
        return;
    }
    kernels::scaled_softmax_in_place(xs, 1.0);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn approx(a: f32, b: f32) -> bool {
        (a - b).abs() <= 1e-5 * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn construction_and_accessors() {
        let t = Tensor::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(t.shape(), (2, 3));
        assert_eq!(t.get(1, 2), 6.0);
        assert_eq!(t.row_slice(0), &[1.0, 2.0, 3.0]);
        assert_eq!(t.len(), 6);
        assert!(!t.is_empty());
    }

    #[test]
    fn try_from_vec_rejects_bad_length() {
        let err = Tensor::try_from_vec(2, 2, vec![1.0; 3]).unwrap_err();
        assert_eq!(err, ShapeError { expected: 4, actual: 3 });
        assert!(err.to_string().contains("does not match"));
    }

    #[test]
    #[should_panic(expected = "inner dimensions disagree")]
    fn matmul_shape_mismatch_panics() {
        let a = Tensor::zeros(2, 3);
        let b = Tensor::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Tensor::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_variants_agree_with_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(7);
        let a = Tensor::rand_uniform(3, 4, 1.0, &mut rng);
        let b = Tensor::rand_uniform(5, 4, 1.0, &mut rng);
        let via_t = a.matmul(&b.transpose());
        let direct = a.matmul_nt(&b);
        assert_eq!(via_t.shape(), direct.shape());
        for (x, y) in via_t.data().iter().zip(direct.data()) {
            assert!(approx(*x, *y));
        }

        let c = Tensor::rand_uniform(4, 3, 1.0, &mut rng);
        let d = Tensor::rand_uniform(4, 6, 1.0, &mut rng);
        let via_t = c.transpose().matmul(&d);
        let direct = c.matmul_tn(&d);
        for (x, y) in via_t.data().iter().zip(direct.data()) {
            assert!(approx(*x, *y));
        }
    }

    #[test]
    fn softmax_rows_is_a_distribution() {
        let t = Tensor::from_rows(&[&[1.0, 2.0, 3.0], &[-10.0, 0.0, 10.0]]);
        let s = t.softmax_rows();
        for r in 0..2 {
            let row = s.row_slice(r);
            assert!(approx(row.iter().sum::<f32>(), 1.0));
            assert!(row.iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
        // Monotone in the logits.
        assert!(s.get(0, 2) > s.get(0, 1) && s.get(0, 1) > s.get(0, 0));
    }

    #[test]
    fn softmax_is_stable_for_large_logits() {
        let t = Tensor::row(&[1000.0, 1000.0, -1000.0]);
        let s = t.softmax_rows();
        assert!(s.all_finite());
        assert!(approx(s.get(0, 0), 0.5));
    }

    #[test]
    fn softmax_cols_matches_transposed_row_softmax() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = Tensor::rand_uniform(4, 5, 2.0, &mut rng);
        let a = t.softmax_cols();
        let b = t.transpose().softmax_rows().transpose();
        for (x, y) in a.data().iter().zip(b.data()) {
            assert!(approx(*x, *y));
        }
    }

    #[test]
    fn means_and_reductions() {
        let t = Tensor::from_rows(&[&[1.0, 3.0], &[5.0, 7.0]]);
        assert_eq!(t.mean_axis0().data(), &[3.0, 5.0]);
        assert_eq!(t.mean_axis1().data(), &[2.0, 6.0]);
        assert_eq!(t.sum(), 16.0);
        assert_eq!(t.mean(), 4.0);
        assert_eq!(t.max(), 7.0);
    }

    #[test]
    fn argmax_rows_breaks_ties_to_first() {
        let t = Tensor::from_rows(&[&[1.0, 1.0, 0.0], &[0.0, 2.0, 2.0]]);
        assert_eq!(t.argmax_rows(), vec![0, 1]);
    }

    #[test]
    fn slicing_and_concat_roundtrip() {
        let t = Tensor::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let left = t.slice_cols(0, 1);
        let right = t.slice_cols(1, 3);
        let back = Tensor::concat_cols(&[&left, &right]);
        assert_eq!(back, t);

        let top = t.slice_rows(0, 1);
        let bottom = t.slice_rows(1, 2);
        let back = Tensor::concat_rows(&[&top, &bottom]);
        assert_eq!(back, t);
    }

    #[test]
    fn clone_is_copy_on_write() {
        let mut a = Tensor::zeros(2, 2);
        let b = a.clone();
        a.set(0, 0, 9.0);
        assert_eq!(a.get(0, 0), 9.0);
        assert_eq!(b.get(0, 0), 0.0);
    }

    #[test]
    fn add_scaled_in_place_accumulates() {
        let mut a = Tensor::ones(1, 3);
        let b = Tensor::from_rows(&[&[1.0, 2.0, 3.0]]);
        a.add_scaled_in_place(&b, 0.5);
        assert_eq!(a.data(), &[1.5, 2.0, 2.5]);
    }

    #[test]
    fn scale_mut_reuses_unshared_buffer() {
        let mut a = Tensor::from_rows(&[&[1.0, -2.0], &[3.0, 4.0]]);
        let ptr = a.data().as_ptr();
        a.scale_mut(0.5);
        assert_eq!(a.data(), &[0.5, -1.0, 1.5, 2.0]);
        assert_eq!(a.data().as_ptr(), ptr, "unshared scale_mut must not reallocate");
    }

    #[test]
    fn scale_mut_copies_on_write_when_shared() {
        let mut a = Tensor::from_rows(&[&[2.0, 4.0]]);
        let b = a.clone();
        a.scale_mut(2.0);
        assert_eq!(a.data(), &[4.0, 8.0]);
        assert_eq!(b.data(), &[2.0, 4.0], "shared holder must see the old values");
    }

    #[test]
    fn transpose_involution() {
        let mut rng = StdRng::seed_from_u64(11);
        let t = Tensor::rand_normal(3, 7, 0.0, 1.0, &mut rng);
        assert_eq!(t.transpose().transpose(), t);
    }

    #[test]
    fn serde_roundtrip_is_bit_exact() {
        let mut rng = StdRng::seed_from_u64(17);
        let t = Tensor::rand_normal(3, 5, 0.0, 2.0, &mut rng);
        let back = Tensor::from_value(&t.to_value()).unwrap();
        assert_eq!(back.shape(), t.shape());
        assert_eq!(back.data(), t.data(), "serde round-trip must preserve every bit");
    }

    #[test]
    fn deserialize_rejects_shape_length_mismatch() {
        // A snapshot whose buffer is shorter than rows*cols must be an
        // error, never a tensor that later indexes out of bounds.
        let mut v = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).to_value();
        if let Value::Object(fields) = &mut v {
            for (k, val) in fields.iter_mut() {
                if k == "data" {
                    *val = Value::Array(vec![Value::Float(1.0)]);
                }
            }
        }
        let err = Tensor::from_value(&v).unwrap_err();
        assert!(err.to_string().contains("does not fill shape"), "{err}");
    }

    #[test]
    fn deserialize_rejects_overflowing_shape() {
        let v = Value::Object(vec![
            ("rows".to_string(), Value::UInt(u64::MAX / 2)),
            ("cols".to_string(), Value::UInt(4)),
            ("data".to_string(), Value::Array(vec![])),
        ]);
        let err = Tensor::from_value(&v).unwrap_err();
        assert!(err.to_string().contains("overflows"), "{err}");
    }

    #[test]
    fn deserialize_rejects_missing_and_mistyped_fields() {
        for missing in ["rows", "cols", "data"] {
            let v = Value::Object(
                Tensor::ones(2, 2)
                    .to_value()
                    .as_object()
                    .unwrap()
                    .iter()
                    .filter(|(k, _)| k != missing)
                    .cloned()
                    .collect(),
            );
            assert!(Tensor::from_value(&v).is_err(), "dropped `{missing}` must fail");
        }
        let v = Value::Object(vec![
            ("rows".to_string(), Value::Str("two".into())),
            ("cols".to_string(), Value::UInt(2)),
            ("data".to_string(), Value::Array(vec![])),
        ]);
        assert!(Tensor::from_value(&v).is_err());
    }

    #[test]
    fn xavier_limit_respects_fan() {
        let mut rng = StdRng::seed_from_u64(5);
        let t = Tensor::xavier(100, 100, &mut rng);
        let limit = (6.0f32 / 200.0).sqrt();
        assert!(t.data().iter().all(|&x| x.abs() <= limit));
    }

}
