//! emba-prof: thread-local, op-level profiler for the autodiff tape.
//!
//! When enabled, every forward and backward tape op records its *self*
//! wall-time, call count, output bytes, and an estimated FLOP count under a
//! hierarchical **phase scope** stack (`train/epoch/example/forward/...`),
//! plus a capped timeline of phase spans for Chrome-trace export. The crate
//! only collects; rendering (trace-event JSON, folded stacks, per-op tables)
//! lives in `emba-trace`, which depends on this crate.
//!
//! Self-time uses *delta accounting*: the profiler keeps one per-thread
//! `mark` timestamp, advanced at every op record and every scope boundary.
//! An op's self-time is the time elapsed since the previous profiler event
//! on this thread. Inside a forward or backward pass — where consecutive
//! tape ops are back to back — this attributes exactly the op's compute, and
//! it makes per-op self-times sum to the enclosing phase's wall time by
//! construction (the property the `reproduce profile` gate checks).
//!
//! Like [`crate::guard`] and the scratch [`crate::pool`], the profiler is
//! thread-local: the engine is single-threaded per run, so there is no
//! cross-thread state and concurrent test runs cannot observe each other.
//! The disabled fast path is a single `thread_local` bool read per op
//! (measured ≤2% on the kernel-bench shapes by `reproduce profile`).

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::marker::PhantomData;
use std::time::Instant;

/// Cap on buffered phase spans for the Chrome-trace timeline. Aggregated
/// per-op and per-phase statistics are unaffected by the cap; spans beyond
/// it are counted in [`ProfReport::dropped_spans`] so exports can say how
/// much timeline was truncated instead of silently looking complete.
const MAX_SPANS: usize = 50_000;

/// Interned scope-path entry: one node of the phase tree.
struct PathEntry {
    /// Segment name (`"forward"`); empty for the root.
    name: &'static str,
    /// Parent path index; the root is its own parent.
    parent: usize,
    /// Times this exact path was entered.
    calls: u64,
    /// Total wall time spent inside, children included.
    total_ns: u64,
}

/// One closed phase span on the timeline.
#[derive(Clone, Copy)]
struct Span {
    path: usize,
    start_ns: u64,
    dur_ns: u64,
}

/// Per-(path, op, direction) aggregate.
#[derive(Default, Clone, Copy)]
struct OpAgg {
    calls: u64,
    self_ns: u64,
    bytes: u64,
    flops: u64,
}

struct ProfState {
    epoch: Instant,
    /// Timestamp (ns since `epoch`) of the last attribution point.
    mark: u64,
    paths: Vec<PathEntry>,
    /// `(parent path, segment) -> path` interning table.
    children: HashMap<(usize, &'static str), usize>,
    /// Currently open path (root when no scope is active).
    current: usize,
    ops: HashMap<(usize, &'static str, bool), OpAgg>,
    spans: Vec<Span>,
    dropped_spans: u64,
}

impl ProfState {
    fn new() -> Self {
        Self {
            epoch: Instant::now(),
            mark: 0,
            paths: vec![PathEntry { name: "", parent: 0, calls: 0, total_ns: 0 }],
            children: HashMap::new(),
            current: 0,
            ops: HashMap::new(),
            spans: Vec::new(),
            dropped_spans: 0,
        }
    }

    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Full `/`-joined path string for `id` (empty string for the root).
    fn path_string(&self, id: usize) -> String {
        let mut segments = Vec::new();
        let mut at = id;
        while at != 0 {
            segments.push(self.paths[at].name);
            at = self.paths[at].parent;
        }
        segments.reverse();
        segments.join("/")
    }
}

thread_local! {
    static ENABLED: Cell<bool> = const { Cell::new(false) };
    static STATE: RefCell<ProfState> = RefCell::new(ProfState::new());
}

/// Turns the profiler on or off for this thread; returns the previous state
/// so callers can restore it. Enabling re-arms the self-time mark (time
/// spent while disabled is never attributed to the next op). Collected data
/// survives disable — drain it with [`report`] or discard with [`reset`].
pub fn enable(on: bool) -> bool {
    let prev = ENABLED.with(|e| e.replace(on));
    if on && !prev {
        STATE.with(|s| {
            let mut s = s.borrow_mut();
            s.mark = s.now_ns();
        });
    }
    prev
}

/// Whether the profiler is currently recording on this thread.
#[inline]
pub fn enabled() -> bool {
    ENABLED.with(Cell::get)
}

/// Discards all collected data and resets the clock epoch. Call between
/// runs; calling with scopes still open is a logic error (their guards will
/// restore a stale path index).
pub fn reset() {
    STATE.with(|s| *s.borrow_mut() = ProfState::new());
}

/// Re-arms the self-time mark without recording anything, so time spent
/// outside the tape (e.g. before a backward sweep) is not attributed to the
/// first op that follows.
pub fn set_mark() {
    STATE.with(|s| {
        let mut s = s.borrow_mut();
        s.mark = s.now_ns();
    });
}

/// RAII guard for one phase scope; pops the scope when dropped. `!Send`:
/// the profiler state it closes over is thread-local.
pub struct ScopeGuard {
    active: bool,
    prev: usize,
    start_ns: u64,
    _not_send: PhantomData<*const ()>,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        STATE.with(|s| {
            let mut s = s.borrow_mut();
            let now = s.now_ns();
            let id = s.current;
            let start = self.start_ns;
            let entry = &mut s.paths[id];
            entry.total_ns += now.saturating_sub(start);
            if s.spans.len() < MAX_SPANS {
                s.spans.push(Span { path: id, start_ns: start, dur_ns: now.saturating_sub(start) });
            } else {
                s.dropped_spans += 1;
            }
            s.current = self.prev;
            s.mark = now;
        });
    }
}

/// Opens a phase scope named `name` under the current path. A no-op (and
/// near-free) when the profiler is disabled. Scopes nest; drop order must be
/// LIFO, which the borrow checker enforces for the idiomatic
/// `let _scope = prof::scope("forward");` usage.
pub fn scope(name: &'static str) -> ScopeGuard {
    if !enabled() {
        return ScopeGuard { active: false, prev: 0, start_ns: 0, _not_send: PhantomData };
    }
    STATE.with(|s| {
        let mut s = s.borrow_mut();
        let now = s.now_ns();
        let parent = s.current;
        let id = match s.children.get(&(parent, name)) {
            Some(&id) => id,
            None => {
                let id = s.paths.len();
                s.paths.push(PathEntry { name, parent, calls: 0, total_ns: 0 });
                s.children.insert((parent, name), id);
                id
            }
        };
        s.paths[id].calls += 1;
        s.current = id;
        s.mark = now;
        ScopeGuard { active: true, prev: parent, start_ns: now, _not_send: PhantomData }
    })
}

/// Records one tape op under the current scope. Self-time is the delta from
/// the previous profiler event (see the module docs). Callers check
/// [`enabled`] first; calling while disabled still records.
pub fn record_op(op: &'static str, backward: bool, bytes: u64, flops: u64) {
    STATE.with(|s| {
        let mut s = s.borrow_mut();
        let now = s.now_ns();
        let self_ns = now.saturating_sub(s.mark);
        s.mark = now;
        let path = s.current;
        let agg = s.ops.entry((path, op, backward)).or_default();
        agg.calls += 1;
        agg.self_ns += self_ns;
        agg.bytes += bytes;
        agg.flops += flops;
    });
}

/// Estimated forward FLOPs of one tape op, from its name, parent shapes, and
/// output shape. Estimates, not measurements: GEMM-family ops use the exact
/// `2·m·k·n` multiply-add count; transcendental elementwise ops use small
/// per-element constants; pure data movement (embedding, slice, concat)
/// counts zero. Backward passes are charged 2× the forward estimate by the
/// tape.
pub fn estimate_flops(op: &str, parents: &[(usize, usize)], out: (usize, usize)) -> u64 {
    let elems = (out.0 * out.1) as u64;
    let in_elems = |i: usize| parents.get(i).map_or(0, |&(r, c)| (r * c) as u64);
    match op {
        "matmul" | "matmul_nt" => 2 * elems * parents.first().map_or(0, |p| p.1 as u64),
        "matmul_tn" => 2 * elems * parents.first().map_or(0, |p| p.0 as u64),
        // x·W + bias: first parent is x = [m, k].
        "linear" => 2 * elems * parents.first().map_or(0, |p| p.1 as u64) + elems,
        "linear_bias_gelu" => {
            2 * elems * parents.first().map_or(0, |p| p.1 as u64) + 16 * elems
        }
        // Quantized affine: same multiply-add count as the f32 op (the i8
        // lanes change the cost per FLOP, not the FLOP count), plus the
        // per-row activation quantization pass charged one-per-input-element.
        "linear_q8" => 2 * elems * parents.first().map_or(0, |p| p.1 as u64) + elems + in_elems(0),
        "linear_q8_gelu" => {
            2 * elems * parents.first().map_or(0, |p| p.1 as u64) + 16 * elems + in_elems(0)
        }
        // q·kᵀ scaled plus a row softmax over the [m, n] scores. The grouped
        // variant is block-diagonal; charging by the padded [ΣT, W] output is
        // a slight overestimate for ragged batches.
        "attention_scores" | "attention_scores_grouped" => {
            2 * elems * parents.first().map_or(0, |p| p.1 as u64) + 7 * elems
        }
        // Block-diagonal probs·values: out [ΣT, d], probs parent [ΣT, W].
        "matmul_grouped" => 2 * elems * parents.first().map_or(0, |p| p.1 as u64),
        // Per-pair A·Bᵀ: out [ΣM, W], left parent [ΣM, h].
        "interaction_grouped" => 2 * elems * parents.first().map_or(0, |p| p.1 as u64),
        "softmax_rows_grouped" | "softmax_cols_grouped" | "softmax_col_grouped" => 7 * elems,
        "mean_rows_grouped" => in_elems(0),
        "rowdot_grouped" | "weighted_sum_rows_grouped" => 2 * in_elems(1),
        "softmax_rows" | "softmax_cols" | "log_softmax_rows" => 7 * elems,
        "layer_norm" => 8 * elems,
        "gelu" => 15 * elems,
        "tanh" | "sigmoid" => 10 * elems,
        // Loss ops reduce to a scalar; charge by the logits size.
        "cross_entropy" | "cross_entropy_weighted" | "bce_with_logits" => 10 * in_elems(0),
        "sum_all" | "mean_all" | "mean_axis0" | "mean_axis1" => in_elems(0),
        "embedding" | "leaf" | "transpose" | "concat_rows" | "concat_cols" | "slice_rows"
        | "slice_cols" | "gather_rows" => 0,
        // add, sub, mul, scale, relu, dropout, anything new: one per element.
        _ => elems,
    }
}

/// One per-(phase, op, direction) aggregate row.
#[derive(Debug, Clone)]
pub struct OpStat {
    /// `/`-joined phase path the op ran under (empty = outside any scope).
    pub path: String,
    /// Tape op name.
    pub op: &'static str,
    /// `true` for the backward pass of the op.
    pub backward: bool,
    /// Number of calls.
    pub calls: u64,
    /// Total self wall-time, nanoseconds.
    pub self_ns: u64,
    /// Total bytes produced (forward: output tensors; backward: gradients).
    pub bytes: u64,
    /// Total estimated FLOPs.
    pub flops: u64,
}

/// Aggregate for one phase path.
#[derive(Debug, Clone)]
pub struct PhaseStat {
    /// `/`-joined phase path.
    pub path: String,
    /// Times the phase was entered.
    pub calls: u64,
    /// Total wall time inside (children included), nanoseconds.
    pub total_ns: u64,
}

/// One closed span on the timeline, for Chrome-trace export.
#[derive(Debug, Clone)]
pub struct SpanStat {
    /// `/`-joined phase path.
    pub path: String,
    /// Start, nanoseconds since the profiler epoch.
    pub start_ns: u64,
    /// Duration, nanoseconds.
    pub dur_ns: u64,
}

/// Everything the profiler collected on this thread, in deterministic order.
#[derive(Debug, Clone, Default)]
pub struct ProfReport {
    /// Per-(path, op, direction) rows, sorted by `(path, op, backward)`.
    pub ops: Vec<OpStat>,
    /// Per-phase totals, sorted by path (stable across runs by
    /// construction, so summary diffs compare byte-for-byte).
    pub phases: Vec<PhaseStat>,
    /// Phase-span timeline in close order, capped at an internal limit.
    pub spans: Vec<SpanStat>,
    /// Spans dropped once the timeline cap was hit.
    pub dropped_spans: u64,
}

/// Snapshots the collected data (without clearing it — see [`reset`]).
pub fn report() -> ProfReport {
    STATE.with(|s| {
        let s = s.borrow();
        let mut ops: Vec<OpStat> = s
            .ops
            .iter()
            .map(|(&(path, op, backward), agg)| OpStat {
                path: s.path_string(path),
                op,
                backward,
                calls: agg.calls,
                self_ns: agg.self_ns,
                bytes: agg.bytes,
                flops: agg.flops,
            })
            .collect();
        ops.sort_by(|a, b| (&a.path, a.op, a.backward).cmp(&(&b.path, b.op, b.backward)));
        let mut phases: Vec<PhaseStat> = s
            .paths
            .iter()
            .enumerate()
            .skip(1) // the root is bookkeeping, not a phase
            .filter(|(_, p)| p.calls > 0)
            .map(|(id, p)| PhaseStat {
                path: s.path_string(id),
                calls: p.calls,
                total_ns: p.total_ns,
            })
            .collect();
        phases.sort_by(|a, b| a.path.cmp(&b.path));
        let spans = s
            .spans
            .iter()
            .map(|sp| SpanStat {
                path: s.path_string(sp.path),
                start_ns: sp.start_ns,
                dur_ns: sp.dur_ns,
            })
            .collect();
        ProfReport { ops, phases, spans, dropped_spans: s.dropped_spans }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Graph, Tensor};

    fn with_clean_profiler<T>(f: impl FnOnce() -> T) -> T {
        reset();
        let prev = enable(true);
        let out = f();
        enable(prev);
        out
    }

    #[test]
    fn disabled_profiler_records_nothing() {
        reset();
        assert!(!enabled());
        let g = Graph::new();
        let a = g.leaf(Tensor::row(&[1.0, 2.0]));
        let _ = g.scale(a, 2.0);
        let r = report();
        assert!(r.ops.is_empty());
        assert!(r.phases.is_empty());
    }

    #[test]
    fn ops_are_recorded_under_the_scope_stack() {
        let r = with_clean_profiler(|| {
            let _outer = scope("train");
            let g = Graph::new();
            let a = g.leaf(Tensor::row(&[1.0, 2.0, 3.0]));
            {
                let _inner = scope("forward");
                let _ = g.scale(a, 2.0);
                let _ = g.scale(a, 3.0);
            }
            let _ = g.relu(a);
            drop(_outer);
            report()
        });
        let scale = r
            .ops
            .iter()
            .find(|o| o.op == "scale" && !o.backward)
            .expect("scale row");
        assert_eq!(scale.path, "train/forward");
        assert_eq!(scale.calls, 2);
        assert_eq!(scale.bytes, 2 * 3 * 4);
        let relu = r.ops.iter().find(|o| o.op == "relu").expect("relu row");
        assert_eq!(relu.path, "train");
        let fwd = r.phases.iter().find(|p| p.path == "train/forward").expect("phase");
        assert_eq!(fwd.calls, 1);
        assert!(fwd.total_ns > 0);
    }

    #[test]
    fn backward_ops_are_tagged_and_flop_scaled() {
        let r = with_clean_profiler(|| {
            let g = Graph::new();
            let a = g.leaf(Tensor::from_vec(2, 3, vec![0.1; 6]));
            let b = g.leaf(Tensor::from_vec(3, 2, vec![0.2; 6]));
            let c = g.matmul(a, b);
            let loss = g.sum_all(c);
            let grads = g.backward(loss);
            grads.recycle();
            report()
        });
        let fwd = r.ops.iter().find(|o| o.op == "matmul" && !o.backward).unwrap();
        let bwd = r.ops.iter().find(|o| o.op == "matmul" && o.backward).unwrap();
        assert_eq!(fwd.flops, 2 * 2 * 3 * 2);
        assert_eq!(bwd.flops, 2 * fwd.flops);
        assert_eq!(bwd.calls, 1);
    }

    #[test]
    fn self_times_sum_to_phase_wall_time() {
        // The delta-accounting invariant the `reproduce profile` gate relies
        // on: op self-times under a phase account for (almost all of) the
        // phase's wall time.
        let r = with_clean_profiler(|| {
            let g = Graph::new();
            let a = g.leaf(Tensor::from_vec(32, 32, vec![0.01; 32 * 32]));
            {
                let _fwd = scope("forward");
                let mut x = a;
                for _ in 0..8 {
                    x = g.matmul(x, a);
                }
                let _ = g.sum_all(x);
            }
            report()
        });
        let phase = r.phases.iter().find(|p| p.path == "forward").unwrap();
        let op_ns: u64 =
            r.ops.iter().filter(|o| o.path == "forward").map(|o| o.self_ns).sum();
        assert!(
            op_ns <= phase.total_ns,
            "op self time {op_ns} exceeds phase wall {}",
            phase.total_ns
        );
        // The leaf recorded before the scope opened is outside; everything
        // inside is tape ops, so coverage should be essentially complete.
        assert!(
            op_ns as f64 >= 0.9 * phase.total_ns as f64,
            "op self time {op_ns} covers <90% of phase wall {}",
            phase.total_ns
        );
    }

    #[test]
    fn report_orders_are_deterministic() {
        let r = with_clean_profiler(|| {
            let g = Graph::new();
            let a = g.leaf(Tensor::row(&[1.0]));
            {
                let _b = scope("beta");
                let _ = g.relu(a);
            }
            {
                let _a = scope("alpha");
                let _ = g.relu(a);
            }
            report()
        });
        let phase_paths: Vec<&str> = r.phases.iter().map(|p| p.path.as_str()).collect();
        assert_eq!(phase_paths, ["alpha", "beta"]);
        let mut sorted = r.ops.clone();
        sorted.sort_by(|a, b| (&a.path, a.op, a.backward).cmp(&(&b.path, b.op, b.backward)));
        assert_eq!(
            r.ops.iter().map(|o| (&o.path, o.op, o.backward)).collect::<Vec<_>>(),
            sorted.iter().map(|o| (&o.path, o.op, o.backward)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn scopes_repeat_without_duplicating_paths() {
        let r = with_clean_profiler(|| {
            for _ in 0..3 {
                let _e = scope("epoch");
            }
            report()
        });
        assert_eq!(r.phases.len(), 1);
        assert_eq!(r.phases[0].calls, 3);
        assert_eq!(r.spans.len(), 3);
    }

    #[test]
    fn flop_estimates_cover_the_gemm_family() {
        // out [4,5] = [4,3]·[3,5]
        assert_eq!(estimate_flops("matmul", &[(4, 3), (3, 5)], (4, 5)), 2 * 4 * 3 * 5);
        // nt: [4,3]·[5,3]ᵀ
        assert_eq!(estimate_flops("matmul_nt", &[(4, 3), (5, 3)], (4, 5)), 2 * 4 * 3 * 5);
        // tn: [3,4]ᵀ·[3,5]
        assert_eq!(estimate_flops("matmul_tn", &[(3, 4), (3, 5)], (4, 5)), 2 * 4 * 3 * 5);
        assert_eq!(estimate_flops("embedding", &[], (7, 16)), 0);
        assert!(estimate_flops("gelu", &[(2, 8)], (2, 8)) > 0);
    }
}
