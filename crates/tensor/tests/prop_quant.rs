//! Property-based validation of the int8 quantization scheme: round-trip
//! error bounds, per-channel scale behavior on adversarial distributions,
//! and the quantized GEMM against the f32 reference.

use emba_tensor::quant::{linear_q8_forward, quantize_row_u8, RowQuant};
use emba_tensor::simd;
use emba_tensor::{QuantizedMatrix, Tensor};
use proptest::prelude::*;

/// Strategy: a `(rows, cols)` tensor with values spanning several orders of
/// magnitude, including exact zeros.
fn tensor(rows: usize, cols: usize) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(-4.0f32..4.0, rows * cols).prop_map(move |mut data| {
        // Mix in exact zeros and tiny magnitudes so quantization sees
        // adversarial distributions, not just uniform values.
        for (i, v) in data.iter_mut().enumerate() {
            if i % 7 == 0 {
                *v = 0.0;
            } else if i % 5 == 0 {
                *v *= 0.0025;
            }
        }
        Tensor::from_vec(rows, cols, data)
    })
}

/// Symmetric round-to-nearest with 127 levels puts every reconstructed
/// weight within half a quantization step of the original, where the step
/// is the column's own max magnitude over 127.
fn column_bound(w: &Tensor, j: usize) -> f32 {
    let (k, n) = w.shape();
    let mut max_abs = 0.0f32;
    for i in 0..k {
        max_abs = max_abs.max(w.data()[i * n + j].abs());
    }
    // Half a step, padded slightly for the f32 divide/multiply round trip.
    max_abs / 254.0 + max_abs * 1e-6
}

/// One activation step: asymmetric u8 over the row's own `[min, max]`
/// range. The clamp at the range extremes can cost slightly over half a
/// step, so bounds use a full step.
fn row_step(x: &[f32]) -> f32 {
    let mut mn = f32::INFINITY;
    let mut mx = f32::NEG_INFINITY;
    for &v in x {
        mn = mn.min(v);
        mx = mx.max(v);
    }
    (mx - mn) / 255.0
}

/// Dequantized activation row under the exact scheme the forward uses.
fn dequant_row(x: &[f32]) -> Vec<f64> {
    let mut q = vec![0u8; x.len()];
    match quantize_row_u8(x, &mut q) {
        RowQuant::Constant(c) => vec![c as f64; x.len()],
        RowQuant::Affine { scale, zp } => q
            .iter()
            .map(|&qi| (qi as i64 - zp as i64) as f64 * scale as f64)
            .collect(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn quantize_dequantize_round_trip_within_half_step(w in tensor(13, 9)) {
        let q = QuantizedMatrix::quantize(&w);
        let back = q.dequantize();
        let (k, n) = w.shape();
        for j in 0..n {
            let bound = column_bound(&w, j);
            for i in 0..k {
                let orig = w.data()[i * n + j];
                let rec = back.data()[i * n + j];
                prop_assert!(
                    (orig - rec).abs() <= bound,
                    "w[{i},{j}]={orig} reconstructed {rec}, bound {bound}"
                );
            }
        }
    }

    #[test]
    fn row_quantization_round_trips(xs in proptest::collection::vec(-8.0f32..8.0, 1..64)) {
        let mut q = vec![0u8; xs.len()];
        match quantize_row_u8(&xs, &mut q) {
            RowQuant::Constant(c) => {
                // Only returned when the row's spread is negligible against
                // its magnitude (or the row is all-zero / a single value).
                let mag = xs.iter().fold(0.0f32, |m, v| m.max(v.abs()));
                for &v in &xs {
                    prop_assert!((v - c).abs() <= mag * 1e-6 + f32::EPSILON);
                }
                prop_assert!(q.iter().all(|&b| b == 0));
            }
            RowQuant::Affine { scale, zp } => {
                let step = row_step(&xs);
                prop_assert!((scale - step).abs() <= step * 1e-5);
                let bound = step + step * 1e-4;
                for (&orig, &qi) in xs.iter().zip(&q) {
                    let rec = (qi as i64 - zp as i64) as f32 * scale;
                    prop_assert!(
                        (orig - rec).abs() <= bound,
                        "{orig} -> {rec}, step {step}"
                    );
                }
            }
        }
    }

    /// The quantized affine op against an f64 reference of the *quantized
    /// model*: the only divergence allowed is the final f32 rescale
    /// round-off, so the tolerance is tiny and independent of how coarse
    /// quantization was.
    #[test]
    fn linear_q8_matches_dequantized_reference(
        x in tensor(5, 24),
        w in tensor(24, 11),
        b in tensor(1, 11),
    ) {
        let q = QuantizedMatrix::quantize(&w);
        let out = linear_q8_forward(&x, &q, &b, false);
        let (m, k) = x.shape();
        let n = q.out_dim();
        let wq = q.dequantize();
        for r in 0..m {
            let xhat = dequant_row(&x.data()[r * k..(r + 1) * k]);
            for j in 0..n {
                let mut acc = 0.0f64;
                for (i, xv) in xhat.iter().enumerate() {
                    acc += xv * wq.data()[i * n + j] as f64;
                }
                let expect = acc + b.data()[j] as f64;
                let got = out.data()[r * n + j] as f64;
                prop_assert!(
                    (expect - got).abs() <= 1e-3 * expect.abs().max(1.0),
                    "out[{r},{j}]: {got} vs reference {expect}"
                );
            }
        }
    }

    /// End-to-end int8 linear against the f32 linear: bounded by the sum of
    /// the weight and activation quantization errors through a length-k dot.
    #[test]
    fn linear_q8_tracks_f32_within_documented_bound(
        x in tensor(4, 32),
        w in tensor(32, 9),
    ) {
        let (m, k) = x.shape();
        let n = w.shape().1;
        let b = Tensor::zeros(1, n);
        let q = QuantizedMatrix::quantize(&w);
        let out = linear_q8_forward(&x, &q, &b, false);
        for r in 0..m {
            let row = &x.data()[r * k..(r + 1) * k];
            let x_max = row.iter().fold(0.0f32, |mx, v| mx.max(v.abs()));
            // Full-step activation bound (the clamp at the range extremes
            // can exceed half a step), half-step weight bound per column.
            let e_x = row_step(row) as f64 * (1.0 + 1e-4) + 1e-7;
            for j in 0..n {
                let mut w_max = 0.0f32;
                let mut exact = 0.0f64;
                for (i, xv) in row.iter().enumerate() {
                    let wij = w.data()[i * n + j];
                    w_max = w_max.max(wij.abs());
                    exact += *xv as f64 * wij as f64;
                }
                let e_w = w_max as f64 / 254.0;
                let bound = (k as f64)
                    * (e_x * w_max as f64 + e_w * x_max as f64 + e_x * e_w)
                    + 1e-4;
                let got = out.data()[r * n + j] as f64;
                prop_assert!(
                    (exact - got).abs() <= bound,
                    "out[{r},{j}]: int8 {got} vs f32 {exact}, bound {bound}"
                );
            }
        }
    }
}

#[test]
fn all_zero_channel_gets_unit_scale_and_exact_zeros() {
    // Column 1 is identically zero — an unguarded max/127 would divide by
    // zero and poison the whole matrix with NaN.
    let w = Tensor::from_rows(&[&[1.0, 0.0, -3.0], &[0.5, 0.0, 2.0], &[-1.0, 0.0, 0.25]]);
    let q = QuantizedMatrix::quantize(&w);
    assert_eq!(q.scales()[1], 1.0);
    assert_eq!(q.col_sums()[1], 0);
    let back = q.dequantize();
    for i in 0..3 {
        assert_eq!(back.data()[i * 3 + 1], 0.0);
    }
    assert!(back.data().iter().all(|v| v.is_finite()));
}

#[test]
fn single_outlier_sets_the_channel_scale() {
    // One huge weight in a column of tiny ones: per-channel scaling clamps
    // the damage to that column. The outlier itself must round-trip exactly
    // (it sits on the +-127 level) and the *other* column keeps fine
    // resolution — the failure mode of per-tensor scaling.
    let w = Tensor::from_rows(&[&[1000.0, 0.001], &[0.001, 0.002], &[-0.002, -0.003]]);
    let q = QuantizedMatrix::quantize(&w);
    assert!((q.scales()[0] - 1000.0 / 127.0).abs() < 1e-3);
    let back = q.dequantize();
    assert!((back.data()[0] - 1000.0).abs() < 1e-2);
    // Fine column: every entry within half its own (tiny) step.
    let fine_bound = 0.003 / 254.0 + 1e-6;
    for i in 0..3 {
        let orig = w.data()[i * 2 + 1];
        let rec = back.data()[i * 2 + 1];
        assert!(
            (orig - rec).abs() <= fine_bound,
            "fine col: {orig} vs {rec}"
        );
    }
}

#[test]
fn constant_and_positive_rows_stay_exact_or_affine() {
    // All-zero row: exact bias. Constant non-zero row: exact closed form
    // over the dequantized weights. All-positive row: the zero point goes
    // negative and the affine form must still reconstruct.
    let w = Tensor::from_rows(&[&[0.5, -1.0], &[0.25, 2.0], &[-0.75, 0.5]]);
    let q = QuantizedMatrix::quantize(&w);
    let b = Tensor::from_vec(1, 2, vec![0.125, -0.5]);
    let x = Tensor::from_rows(&[
        &[0.0, 0.0, 0.0],
        &[3.0, 3.0, 3.0],
        &[5.0, 6.0, 7.0],
    ]);
    let out = linear_q8_forward(&x, &q, &b, false);
    // Row 0: exactly the bias.
    assert_eq!(&out.data()[..2], b.data());
    // Row 1: c * sum(dequantized column) + bias, exactly.
    let wq = q.dequantize();
    for j in 0..2 {
        let expect = 3.0 * (0..3).map(|i| wq.data()[i * 2 + j]).sum::<f32>() + b.data()[j];
        assert!((out.data()[2 + j] - expect).abs() <= 1e-5, "constant row");
    }
    // Row 2: affine with negative zero point; within the documented bound.
    let step = (7.0 - 5.0) / 255.0f64;
    for j in 0..2 {
        let exact: f64 = (0..3)
            .map(|i| x.data()[6 + i] as f64 * w.data()[i * 2 + j] as f64)
            .sum::<f64>()
            + b.data()[j] as f64;
        let w_max: f64 = (0..3).map(|i| (w.data()[i * 2 + j] as f64).abs()).fold(0.0, f64::max);
        let bound = 3.0 * (step * w_max + w_max / 254.0 * 7.0 + step * w_max / 254.0) + 1e-4;
        assert!(
            (out.data()[4 + j] as f64 - exact).abs() <= bound,
            "positive row: {} vs {exact}",
            out.data()[4 + j]
        );
    }
}

#[test]
fn scalar_and_simd_forwards_agree_bitwise() {
    // The integer GEMM is exact at every tier, quantization rounds
    // ties-to-even at every tier, and the rescale applies identical f32 ops
    // per element, so forcing the scalar path must reproduce the SIMD
    // result bit-for-bit.
    let mut vals = Vec::new();
    let mut s = 0x9e37_79b9u32;
    for _ in 0..(7 * 67 + 67 * 5 + 5) {
        s = s.wrapping_mul(1664525).wrapping_add(1013904223);
        vals.push(((s >> 16) as f32 / 32768.0) - 1.0);
    }
    let x = Tensor::from_vec(7, 67, vals[..7 * 67].to_vec());
    let w = Tensor::from_vec(67, 5, vals[7 * 67..7 * 67 + 67 * 5].to_vec());
    let b = Tensor::from_vec(1, 5, vals[7 * 67 + 67 * 5..].to_vec());
    let q = QuantizedMatrix::quantize(&w);
    let before = simd::forced_scalar();
    let fast = linear_q8_forward(&x, &q, &b, true);
    simd::set_forced_scalar(true);
    let scalar = linear_q8_forward(&x, &q, &b, true);
    simd::set_forced_scalar(before);
    assert_eq!(fast.data(), scalar.data());
}
