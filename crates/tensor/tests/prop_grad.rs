//! Property-based validation of every analytic gradient in the tape against
//! central finite differences, plus algebraic invariants of the raw kernels.

use emba_tensor::{gradcheck::check_gradients, Graph, Tensor, Var};
use proptest::prelude::*;

const EPS: f32 = 1e-2;
const TOL: f32 = 5e-2;

/// Strategy: a tensor of the given shape with moderate, well-conditioned
/// values (large magnitudes make finite differences unreliable in f32).
fn tensor(rows: usize, cols: usize) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(-2.0f32..2.0, rows * cols)
        .prop_map(move |data| Tensor::from_vec(rows, cols, data))
}

fn check(inputs: &[Tensor], f: impl Fn(&Graph, &[Var]) -> Var) {
    check_gradients(inputs, f, EPS, TOL).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn grad_add_sub_mul(a in tensor(3, 4), b in tensor(3, 4)) {
        check(&[a.clone(), b.clone()], |g, v| {
            let s = g.add(v[0], v[1]);
            let d = g.sub(s, v[1]);
            let m = g.mul(d, v[1]);
            g.sum_all(m)
        });
    }

    #[test]
    fn grad_matmul(a in tensor(2, 3), b in tensor(3, 4)) {
        check(&[a, b], |g, v| {
            let c = g.matmul(v[0], v[1]);
            g.mean_all(c)
        });
    }

    #[test]
    fn grad_matmul_nt(a in tensor(2, 3), b in tensor(4, 3)) {
        check(&[a, b], |g, v| {
            let c = g.matmul_nt(v[0], v[1]);
            g.mean_all(c)
        });
    }

    #[test]
    fn grad_matmul_tn(a in tensor(3, 2), b in tensor(3, 4)) {
        check(&[a, b], |g, v| {
            let c = g.matmul_tn(v[0], v[1]);
            g.mean_all(c)
        });
    }

    #[test]
    fn grad_nonlinearities(x in tensor(2, 5)) {
        check(std::slice::from_ref(&x), |g, v| {
            let y = g.tanh(v[0]);
            g.sum_all(y)
        });
        check(std::slice::from_ref(&x), |g, v| {
            let y = g.sigmoid(v[0]);
            g.sum_all(y)
        });
        check(std::slice::from_ref(&x), |g, v| {
            let y = g.gelu(v[0]);
            g.sum_all(y)
        });
    }

    #[test]
    fn grad_softmax_rows(x in tensor(3, 4), w in tensor(3, 4)) {
        check(&[x, w], |g, v| {
            let p = g.softmax_rows(v[0]);
            let y = g.mul(p, v[1]);
            g.sum_all(y)
        });
    }

    #[test]
    fn grad_softmax_cols(x in tensor(3, 4), w in tensor(3, 4)) {
        check(&[x, w], |g, v| {
            let p = g.softmax_cols(v[0]);
            let y = g.mul(p, v[1]);
            g.sum_all(y)
        });
    }

    #[test]
    fn grad_log_softmax(x in tensor(2, 5)) {
        check(&[x], |g, v| {
            let p = g.log_softmax_rows(v[0]);
            g.mean_all(p)
        });
    }

    #[test]
    fn grad_layer_norm(x in tensor(3, 6), gamma in tensor(1, 6), beta in tensor(1, 6)) {
        check(&[x, gamma, beta], |g, v| {
            let y = g.layer_norm(v[0], v[1], v[2]);
            let sq = g.mul(y, y);
            g.mean_all(sq)
        });
    }

    #[test]
    fn grad_bias_and_means(x in tensor(3, 4), b in tensor(1, 4)) {
        check(&[x.clone(), b], |g, v| {
            let y = g.add_bias(v[0], v[1]);
            g.sum_all(y)
        });
        check(std::slice::from_ref(&x), |g, v| {
            let y = g.mean_axis0(v[0]);
            let sq = g.mul(y, y);
            g.sum_all(sq)
        });
        check(&[x], |g, v| {
            let y = g.mean_axis1(v[0]);
            let sq = g.mul(y, y);
            g.sum_all(sq)
        });
    }

    #[test]
    fn grad_embedding(w in tensor(5, 3)) {
        check(&[w], |g, v| {
            let e = g.embedding(v[0], &[0, 2, 2, 4]);
            let sq = g.mul(e, e);
            g.sum_all(sq)
        });
    }

    #[test]
    fn grad_cross_entropy(logits in tensor(3, 4)) {
        check(&[logits], |g, v| g.cross_entropy(v[0], &[0, 3, 1]));
    }

    #[test]
    fn grad_weighted_cross_entropy(logits in tensor(3, 3)) {
        check(&[logits], |g, v| {
            g.cross_entropy_weighted(v[0], &[2, 0, 1], Some(&[1.0, 2.5, 0.5]))
        });
    }

    #[test]
    fn grad_bce(logits in tensor(4, 1)) {
        check(&[logits], |g, v| g.bce_with_logits(v[0], &[1.0, 0.0, 1.0, 0.0]));
    }

    #[test]
    fn grad_slice_concat_transpose(x in tensor(4, 4)) {
        check(&[x], |g, v| {
            let t = g.transpose(v[0]);
            let a = g.slice_rows(t, 0, 2);
            let b = g.slice_cols(t, 1, 3);
            let bb = g.slice_rows(b, 0, 2);
            let cat = g.concat_cols(&[a, bb]);
            let sq = g.mul(cat, cat);
            g.mean_all(sq)
        });
    }

    // ----- fused ops ---------------------------------------------------------

    #[test]
    fn grad_fused_linear(x in tensor(3, 4), w in tensor(4, 5), b in tensor(1, 5)) {
        check(&[x, w, b], |g, v| {
            let y = g.linear(v[0], v[1], v[2]);
            let sq = g.mul(y, y);
            g.mean_all(sq)
        });
    }

    #[test]
    fn grad_fused_linear_bias_gelu(x in tensor(2, 3), w in tensor(3, 4), b in tensor(1, 4)) {
        check(&[x, w, b], |g, v| {
            let y = g.linear_bias_gelu(v[0], v[1], v[2]);
            g.sum_all(y)
        });
    }

    #[test]
    fn grad_fused_attention_scores(q in tensor(3, 4), k in tensor(5, 4), w in tensor(3, 5)) {
        check(&[q, k, w], |g, v| {
            let p = g.attention_scores(v[0], v[1], 0.5);
            let y = g.mul(p, v[2]);
            g.sum_all(y)
        });
    }

    #[test]
    fn fused_linear_matches_unfused(x in tensor(3, 4), w in tensor(4, 5), b in tensor(1, 5)) {
        let g = Graph::new();
        let (vx, vw, vb) = (g.leaf(x.clone()), g.leaf(w.clone()), g.leaf(b.clone()));
        let fused = g.value(g.linear(vx, vw, vb));
        let unfused = g.value(g.add_bias(g.matmul(vx, vw), vb));
        for (a, e) in fused.data().iter().zip(unfused.data()) {
            prop_assert!((a - e).abs() < 1e-5);
        }
    }

    #[test]
    fn fused_attention_matches_unfused(q in tensor(4, 6), k in tensor(5, 6)) {
        let g = Graph::new();
        let (vq, vk) = (g.leaf(q), g.leaf(k));
        let scale = 1.0 / 6.0f32.sqrt();
        let fused = g.value(g.attention_scores(vq, vk, scale));
        let unfused = g.value(g.softmax_rows(g.scale(g.matmul_nt(vq, vk), scale)));
        for (a, e) in fused.data().iter().zip(unfused.data()) {
            prop_assert!((a - e).abs() < 1e-5);
        }
    }

    // ----- algebraic invariants of the raw kernels ---------------------------

    #[test]
    fn blocked_matmuls_match_naive_on_random_rectangles(
        m in 1usize..48, k in 1usize..48, n in 1usize..48, seed in 0u64..1u64 << 32
    ) {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut fill = |r: usize, c: usize| {
            Tensor::from_vec(r, c, (0..r * c).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
        };
        let a = fill(m, k);
        let b = fill(k, n);
        // f64 reference product.
        let mut expected = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut s = 0.0f64;
                for p in 0..k {
                    s += f64::from(a.get(i, p)) * f64::from(b.get(p, j));
                }
                expected[i * n + j] = s as f32;
            }
        }
        let close = |got: &Tensor| {
            got.data()
                .iter()
                .zip(&expected)
                .all(|(&x, &y)| (x - y).abs() <= 1e-5 * (1.0 + y.abs()))
        };
        prop_assert!(close(&a.matmul(&b)), "nn {m}x{k}x{n}");
        prop_assert!(close(&a.matmul_nt(&b.transpose())), "nt {m}x{k}x{n}");
        prop_assert!(close(&a.transpose().matmul_tn(&b)), "tn {m}x{k}x{n}");
    }

    #[test]
    fn softmax_rows_is_simplex(x in tensor(4, 6)) {
        let s = x.softmax_rows();
        for r in 0..4 {
            let sum: f32 = s.row_slice(r).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(s.row_slice(r).iter().all(|&p| p >= 0.0));
        }
    }

    #[test]
    fn matmul_distributes_over_addition(
        a in tensor(3, 3), b in tensor(3, 3), c in tensor(3, 3)
    ) {
        let left = a.matmul(&b.add(&c));
        let right = a.matmul(&b).add(&a.matmul(&c));
        for (x, y) in left.data().iter().zip(right.data()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn transpose_of_product_is_reversed_product(a in tensor(2, 3), b in tensor(3, 4)) {
        let left = a.matmul(&b).transpose();
        let right = b.transpose().matmul(&a.transpose());
        for (x, y) in left.data().iter().zip(right.data()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn mean_axis0_preserves_total_mean(x in tensor(5, 3)) {
        prop_assert!((x.mean_axis0().mean() - x.mean()).abs() < 1e-4);
    }
}
