//! Property-based validation of the grouped (batched) tape ops: every
//! analytic gradient against central finite differences, single-group
//! equivalence with the per-example ops they batch, and block-diagonal
//! structure on multi-group inputs.

use emba_tensor::{gradcheck::check_gradients, Graph, RowGroups, Tensor, Var};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

const EPS: f32 = 1e-2;
const TOL: f32 = 5e-2;

fn tensor(rows: usize, cols: usize) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(-2.0f32..2.0, rows * cols)
        .prop_map(move |data| Tensor::from_vec(rows, cols, data))
}

/// Random per-group lengths: 1–4 groups of 1–5 rows each.
fn lens() -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(1usize..6, 1..5)
}

fn check(inputs: &[Tensor], f: impl Fn(&Graph, &[Var]) -> Var) {
    check_gradients(inputs, f, EPS, TOL).unwrap();
}

fn assert_close(a: &Tensor, b: &Tensor, tol: f32, what: &str) {
    assert_eq!(a.shape(), b.shape(), "{what}: shape mismatch");
    for (i, (&x, &y)) in a.data().iter().zip(b.data()).enumerate() {
        assert!(
            (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())),
            "{what}: element {i} differs: {x} vs {y}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn grad_gather_rows(x in tensor(5, 3)) {
        check(std::slice::from_ref(&x), |g, v| {
            // Duplicate indices exercise the scatter-add accumulation.
            let y = g.gather_rows(v[0], &[4, 0, 0, 2]);
            g.sum_all(y)
        });
    }

    #[test]
    fn grad_attention_scores_grouped(ls in lens(), seed in 0u64..1000) {
        let groups = RowGroups::from_lens(&ls);
        let n = groups.total();
        let d = 3;
        let mut rng = StdRng::seed_from_u64(seed);
        let q = Tensor::rand_normal(n, d, 0.0, 0.8, &mut rng);
        let k = Tensor::rand_normal(n, d, 0.0, 0.8, &mut rng);
        let w = Tensor::rand_normal(n, groups.max_len(), 0.0, 1.0, &mut rng);
        check(&[q, k], |g, v| {
            let p = g.attention_scores_grouped(v[0], v[1], 0.5, &groups);
            let wl = g.leaf(w.clone());
            g.sum_all(g.mul(p, wl))
        });
    }

    #[test]
    fn grad_matmul_grouped(ls in lens(), seed in 0u64..1000) {
        let groups = RowGroups::from_lens(&ls);
        let n = groups.total();
        let w = groups.max_len();
        let mut rng = StdRng::seed_from_u64(seed);
        // Build group-masked probabilities: zero outside each group's prefix,
        // as the op's contract requires.
        let mut probs = vec![0.0f32; n * w];
        for gi in 0..groups.len() {
            let (r0, r1) = groups.range(gi);
            let t = r1 - r0;
            for r in r0..r1 {
                for c in 0..t {
                    probs[r * w + c] = f32::from(rng.next_u64() as u8) / 255.0 - 0.5;
                }
            }
        }
        let p = Tensor::from_vec(n, w, probs);
        let v_in = Tensor::rand_normal(n, 3, 0.0, 0.8, &mut rng);
        let (gp, gv) = {
            let g = Graph::new();
            let pv = g.leaf(p.clone());
            let vv = g.leaf(v_in.clone());
            let out = g.matmul_grouped(pv, vv, &groups);
            let grads = g.backward(g.sum_all(out));
            (grads.get(pv).unwrap().clone(), grads.get(vv).unwrap().clone())
        };
        // Reference: per-group dense matmul.
        let gref = Graph::new();
        let mut dp_ref = vec![0.0f32; n * w];
        let mut dv_ref = vec![0.0f32; n * 3];
        for gi in 0..groups.len() {
            let (r0, r1) = groups.range(gi);
            let t = r1 - r0;
            let pb = gref.leaf(p.slice_rows(r0, r1).slice_cols(0, t));
            let vb = gref.leaf(v_in.slice_rows(r0, r1));
            let out = gref.matmul(pb, vb);
            let grads = gref.backward(gref.sum_all(out));
            let dpb = grads.get(pb).unwrap();
            let dvb = grads.get(vb).unwrap();
            for r in 0..t {
                dp_ref[(r0 + r) * w..(r0 + r) * w + t].copy_from_slice(dpb.row_slice(r));
                dv_ref[(r0 + r) * 3..(r0 + r + 1) * 3].copy_from_slice(dvb.row_slice(r));
            }
        }
        assert_close(&gp, &Tensor::from_vec(n, w, dp_ref), 1e-4, "matmul_grouped dP");
        assert_close(&gv, &Tensor::from_vec(n, 3, dv_ref), 1e-4, "matmul_grouped dV");
    }

    #[test]
    fn grad_interaction_and_masked_softmaxes(
        la in lens(), lb in proptest::collection::vec(1usize..6, 1..5), seed in 0u64..1000,
    ) {
        // Align group counts: truncate to the shorter list.
        let gcount = la.len().min(lb.len());
        let ga = RowGroups::from_lens(&la[..gcount]);
        let gb = RowGroups::from_lens(&lb[..gcount]);
        let h = 3;
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Tensor::rand_normal(ga.total(), h, 0.0, 0.8, &mut rng);
        let b = Tensor::rand_normal(gb.total(), h, 0.0, 0.8, &mut rng);
        let w = Tensor::rand_normal(ga.total(), gb.max_len(), 0.0, 1.0, &mut rng);
        // Full AOA-shaped composite: interaction, masked col/row softmax,
        // group mean, row-dot, weighted pooling — one gradcheck over all.
        check(&[a, b], |g, v| {
            let i = g.interaction_grouped(v[0], &ga, v[1], &gb);
            let alpha = g.softmax_cols_grouped(i, &ga, &gb);
            let beta = g.softmax_rows_grouped(i, &ga, &gb);
            let beta_bar = g.mean_rows_grouped(beta, &ga);
            let gamma = g.rowdot_grouped(alpha, beta_bar, &ga);
            let pooled = g.weighted_sum_rows_grouped(gamma, v[0], &ga);
            let wl = g.leaf(w.clone());
            let spice = g.sum_all(g.mul(i, wl));
            g.add(g.sum_all(pooled), spice)
        });
    }

    #[test]
    fn grad_softmax_col_grouped(ls in lens(), seed in 0u64..1000) {
        let groups = RowGroups::from_lens(&ls);
        let n = groups.total();
        let mut rng = StdRng::seed_from_u64(seed);
        let x = Tensor::rand_normal(n, 1, 0.0, 1.0, &mut rng);
        let w = Tensor::rand_normal(n, 1, 0.0, 1.0, &mut rng);
        check(std::slice::from_ref(&x), |g, v| {
            let p = g.softmax_col_grouped(v[0], &groups);
            let wl = g.leaf(w.clone());
            g.sum_all(g.mul(p, wl))
        });
    }

    // ----- single-group equivalence with the per-example ops --------------------

    #[test]
    fn single_group_matches_per_example_ops(rows in 1usize..6, seed in 0u64..1000) {
        let groups = RowGroups::from_lens(&[rows]);
        let d = 4;
        let mut rng = StdRng::seed_from_u64(seed);
        let q = Tensor::rand_normal(rows, d, 0.0, 0.8, &mut rng);
        let k = Tensor::rand_normal(rows, d, 0.0, 0.8, &mut rng);
        let x = Tensor::rand_normal(rows, d, 0.0, 0.8, &mut rng);
        let wcol = Tensor::rand_normal(rows, 1, 0.0, 0.8, &mut rng);

        let g = Graph::new();
        let (qv, kv, xv, wv) = (g.leaf(q.clone()), g.leaf(k.clone()), g.leaf(x.clone()), g.leaf(wcol.clone()));

        let fused = g.attention_scores_grouped(qv, kv, 0.7, &groups);
        let per = g.attention_scores(qv, kv, 0.7);
        assert_close(&g.value(fused), &g.value(per), 1e-6, "attention_scores");

        let ctx_g = g.matmul_grouped(fused, xv, &groups);
        let ctx_p = g.matmul(per, xv);
        assert_close(&g.value(ctx_g), &g.value(ctx_p), 1e-5, "probs·V");

        let inter_g = g.interaction_grouped(qv, &groups, kv, &groups);
        let inter_p = g.matmul_nt(qv, kv);
        assert_close(&g.value(inter_g), &g.value(inter_p), 1e-5, "interaction");

        let sr_g = g.softmax_rows_grouped(inter_g, &groups, &groups);
        let sr_p = g.softmax_rows(inter_p);
        assert_close(&g.value(sr_g), &g.value(sr_p), 1e-5, "softmax_rows");

        let sc_g = g.softmax_cols_grouped(inter_g, &groups, &groups);
        let sc_p = g.softmax_cols(inter_p);
        assert_close(&g.value(sc_g), &g.value(sc_p), 1e-5, "softmax_cols");

        let mean_g = g.mean_rows_grouped(xv, &groups);
        let mean_p = g.mean_axis0(xv);
        assert_close(&g.value(mean_g), &g.value(mean_p), 1e-6, "mean_rows");

        let bbar_g = g.mean_rows_grouped(sr_g, &groups);
        let bbar_p = g.mean_axis0(sr_p);
        let rd_g = g.rowdot_grouped(sr_g, bbar_g, &groups);
        let rd_p = g.matmul_nt(sr_p, bbar_p);
        assert_close(&g.value(rd_g), &g.value(rd_p), 1e-5, "rowdot");

        let ws_g = g.weighted_sum_rows_grouped(wv, xv, &groups);
        let ws_p = g.matmul_tn(wv, xv);
        assert_close(&g.value(ws_g), &g.value(ws_p), 1e-5, "weighted_sum");

        let smc_g = g.softmax_col_grouped(wv, &groups);
        let smc_p = g.transpose(g.softmax_rows(g.transpose(wv)));
        assert_close(&g.value(smc_g), &g.value(smc_p), 1e-5, "softmax_col");

        let gr = g.gather_rows(xv, &[0]);
        let sl = g.slice_rows(xv, 0, 1);
        assert_close(&g.value(gr), &g.value(sl), 0.0, "gather_rows");
    }

    // ----- block-diagonal structure on multi-group inputs -----------------------

    #[test]
    fn grouped_attention_is_block_diagonal(ls in lens(), seed in 0u64..1000) {
        let groups = RowGroups::from_lens(&ls);
        let n = groups.total();
        let d = 4;
        let w = groups.max_len();
        let mut rng = StdRng::seed_from_u64(seed);
        let q = Tensor::rand_normal(n, d, 0.0, 0.8, &mut rng);
        let k = Tensor::rand_normal(n, d, 0.0, 0.8, &mut rng);

        let g = Graph::new();
        let (qv, kv) = (g.leaf(q.clone()), g.leaf(k.clone()));
        let batched = g.value(g.attention_scores_grouped(qv, kv, 0.6, &groups));

        for gi in 0..groups.len() {
            let (r0, r1) = groups.range(gi);
            let t = r1 - r0;
            // Per-sequence reference on its own tape.
            let g2 = Graph::new();
            let qs = g2.leaf(q.slice_rows(r0, r1));
            let ks = g2.leaf(k.slice_rows(r0, r1));
            let single = g2.value(g2.attention_scores(qs, ks, 0.6));
            for r in 0..t {
                for c in 0..w {
                    let got = batched.get(r0 + r, c);
                    if c < t {
                        let want = single.get(r, c);
                        prop_assert!(
                            (got - want).abs() <= 1e-5 * (1.0 + want.abs()),
                            "row {r} col {c}: {got} vs {want}"
                        );
                    } else {
                        prop_assert_eq!(got, 0.0, "padding must stay zero");
                    }
                }
            }
        }
    }
}

#[test]
fn dropout_backward_replays_the_forward_mask() {
    // Strictly positive inputs so a zero output unambiguously means
    // "dropped"; the gradient of sum(dropout(x)) must be `scale` exactly on
    // kept elements and 0 on dropped ones.
    let mut rng = StdRng::seed_from_u64(7);
    let g = Graph::new();
    let x = g.leaf(Tensor::full(4, 16, 1.0));
    let y = g.dropout(x, 0.4, &mut rng);
    let vy = g.value(y);
    let grads = g.backward(g.sum_all(y));
    let dx = grads.get(x).unwrap();
    let scale = 1.0 / 0.6;
    let mut kept = 0;
    for (i, (&yv, &dv)) in vy.data().iter().zip(dx.data()).enumerate() {
        if yv == 0.0 {
            assert_eq!(dv, 0.0, "dropped element {i} must get zero gradient");
        } else {
            assert!((yv - scale).abs() < 1e-6, "kept element {i} must be scaled");
            assert!((dv - scale).abs() < 1e-6, "kept element {i} grad must be scaled");
            kept += 1;
        }
    }
    assert!(kept > 0 && kept < 64, "mask should be non-trivial, kept {kept}");
}
