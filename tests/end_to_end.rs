//! End-to-end integration tests spanning all workspace crates: dataset
//! generation → tokenization → model training → evaluation → explanation.

use emba::core::{
    evaluate, run_experiment, train_single, ExperimentConfig, ModelKind, PretrainCache,
    TrainConfig,
};
use emba::datagen::{build, dataset_stats, DatasetId, Scale, WdcCategory, WdcSize};
use emba::explain::{analyze, explain, LimeConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn quick_cfg() -> ExperimentConfig {
    ExperimentConfig {
        vocab_size: 512,
        max_len: 48,
        train: TrainConfig {
            epochs: 3,
            batch_size: 4,
            lr: 1e-3,
            patience: 3,
            ..TrainConfig::default()
        },
        mlm_epochs: 1,
        runs: 1,
        ..ExperimentConfig::default()
    }
}

#[test]
fn emba_trains_on_every_dataset_family() {
    // One representative of each generator family.
    for id in [
        DatasetId::Wdc(WdcCategory::Computers, WdcSize::Small),
        DatasetId::AbtBuy,
        DatasetId::DblpScholar,
        DatasetId::Bikes,
    ] {
        let ds = build(id, Scale::TEST, 21);
        let (trained, report) = train_single(ModelKind::EmbaSb, &ds, &quick_cfg(), 0);
        assert!(
            report.test.matching.f1.is_finite(),
            "{}: non-finite F1",
            ds.name
        );
        assert!(report.test.ids.is_some(), "{}: missing aux metrics", ds.name);
        // The trained model predicts probabilities on raw records.
        let p = trained.predict(&ds.test[0].left, &ds.test[0].right);
        assert!((0.0..=1.0).contains(&p.prob), "{}: prob {}", ds.name, p.prob);
    }
}

#[test]
fn multitask_and_single_task_models_coexist_on_one_dataset() {
    let ds = build(
        DatasetId::Wdc(WdcCategory::Shoes, WdcSize::Small),
        Scale::TEST,
        5,
    );
    let mut cache = PretrainCache::new();
    for kind in [ModelKind::EmbaSb, ModelKind::Ditto, ModelKind::DeepMatcher] {
        let r = emba::core::run_experiment_cached(kind, &ds, &quick_cfg(), &mut cache);
        assert_eq!(r.id_acc1.is_some(), kind.is_multitask(), "{}", kind.name());
        assert!(r.f1_mean >= 0.0 && r.f1_mean <= 1.0);
    }
    // DITTO and EMBA-SB use different backbones, so only one checkpoint per
    // (backbone, dataset) pair lands in the cache.
    assert_eq!(cache.len(), 2);
}

#[test]
fn pretrain_cache_makes_runs_reproducible() {
    let ds = build(
        DatasetId::Wdc(WdcCategory::Cameras, WdcSize::Small),
        Scale::TEST,
        9,
    );
    let cfg = quick_cfg();
    let (_, a) = train_single(ModelKind::EmbaSb, &ds, &cfg, 7);
    let (_, b) = train_single(ModelKind::EmbaSb, &ds, &cfg, 7);
    assert_eq!(a.test.matching.f1, b.test.matching.f1);
    assert_eq!(a.valid_f1, b.valid_f1);
}

#[test]
fn evaluation_is_deterministic_after_training() {
    let ds = build(
        DatasetId::Wdc(WdcCategory::Watches, WdcSize::Small),
        Scale::TEST,
        3,
    );
    let (trained, _) = train_single(ModelKind::EmbaSb, &ds, &quick_cfg(), 1);
    let pipe = &trained.pipeline;
    let test = pipe.encode_split(&ds.test);
    let mut r1 = StdRng::seed_from_u64(0);
    let mut r2 = StdRng::seed_from_u64(99); // eval ignores rng in eval mode
    let a = evaluate(trained.model.as_ref(), &test, &mut r1);
    let b = evaluate(trained.model.as_ref(), &test, &mut r2);
    assert_eq!(a.matching.f1, b.matching.f1);
}

#[test]
fn explanations_run_against_trained_models() {
    let ds = build(
        DatasetId::Wdc(WdcCategory::Computers, WdcSize::Small),
        Scale::TEST,
        13,
    );
    let (trained, _) = train_single(ModelKind::EmbaSb, &ds, &quick_cfg(), 2);
    let pair = &ds.test[0];

    let lime = explain(
        &trained,
        &pair.left,
        &pair.right,
        &LimeConfig {
            samples: 30,
            ..LimeConfig::default()
        },
    );
    assert!(!lime.words.is_empty());
    assert!(lime.words.iter().all(|w| w.weight.is_finite()));

    let analysis = analyze(&trained, &pair.left, &pair.right);
    assert!(analysis.attention.is_some());
    assert!(analysis.gamma.is_some());
}

#[test]
fn dataset_statistics_reflect_the_generated_data() {
    let ds = build(
        DatasetId::Wdc(WdcCategory::Computers, WdcSize::Medium),
        Scale::TEST,
        2,
    );
    let stats = dataset_stats(&ds);
    let (pos, neg) = ds.train_balance();
    assert_eq!(stats.pos_pairs, pos);
    assert_eq!(stats.neg_pairs, neg);
    assert_eq!(stats.test_size, ds.test.len());
    assert!(stats.lrid >= 0.0);
}

#[test]
fn fasttext_variant_skips_mlm_but_trains() {
    let ds = build(
        DatasetId::Wdc(WdcCategory::Shoes, WdcSize::Small),
        Scale::TEST,
        17,
    );
    let mut cfg = quick_cfg();
    cfg.mlm_epochs = 5; // would be expensive if not skipped for fastText
    let r = run_experiment(ModelKind::EmbaFt, &ds, &cfg);
    assert!(r.f1_mean.is_finite());
    assert!(r.train_pairs_per_sec > 0.0);
}
