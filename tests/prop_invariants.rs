//! Cross-crate property tests: invariants that must hold for arbitrary
//! datasets, records, and model inputs.

use emba::core::{id_metrics, match_metrics, stats};
use emba::core::{PipelineConfig, TextPipeline};
use emba::datagen::{build, lrid, DatasetId, Scale, WdcCategory, WdcSize};
use emba::tokenizer::{encode_pair, special};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn any_seed_produces_a_valid_wdc_dataset(seed in 0u64..10_000) {
        let ds = build(
            DatasetId::Wdc(WdcCategory::Shoes, WdcSize::Small),
            Scale::TEST,
            seed,
        );
        prop_assert!(ds.validate().is_ok());
        // Positives always share classes; encoded text is non-empty.
        for p in ds.all_pairs() {
            if p.is_match {
                prop_assert_eq!(p.left_class, p.right_class);
            }
            prop_assert!(!p.left.text().is_empty());
            prop_assert!(!p.right.text().is_empty());
        }
    }

    #[test]
    fn pipelines_never_exceed_their_budget(
        seed in 0u64..500,
        max_len in 8usize..64,
    ) {
        let ds = build(
            DatasetId::Wdc(WdcCategory::Cameras, WdcSize::Small),
            Scale::TEST,
            seed,
        );
        let pipe = TextPipeline::fit(
            &ds,
            PipelineConfig {
                vocab_size: 256,
                max_len,
                ..PipelineConfig::default()
            },
        );
        for p in ds.train.iter().take(5) {
            let e = pipe.encode_example(p);
            prop_assert!(e.pair.len() <= max_len);
            prop_assert_eq!(e.pair.ids[0], special::CLS);
            prop_assert_eq!(*e.pair.ids.last().unwrap(), special::SEP);
            prop_assert!(!e.pair.left.is_empty());
            prop_assert!(!e.pair.right.is_empty());
        }
    }

    #[test]
    fn encode_pair_respects_any_budget(
        left in proptest::collection::vec(7usize..200, 1..80),
        right in proptest::collection::vec(7usize..200, 1..80),
        max_len in 5usize..128,
    ) {
        let p = encode_pair(&left, &right, max_len);
        prop_assert!(p.len() <= max_len);
        prop_assert_eq!(p.ids.iter().filter(|&&i| i == special::SEP).count(), 2);
        // Content ranges reference the original prefixes.
        prop_assert_eq!(&p.ids[p.left.clone()], &left[..p.left.len()]);
        prop_assert_eq!(&p.ids[p.right.clone()], &right[..p.right.len()]);
    }

    #[test]
    fn f1_is_bounded_and_symmetric_under_perfect_prediction(
        labels in proptest::collection::vec(any::<bool>(), 1..100)
    ) {
        let m = match_metrics(&labels, &labels);
        prop_assert!(m.accuracy == 1.0);
        if labels.iter().any(|&l| l) {
            prop_assert_eq!(m.f1, 1.0);
        } else {
            // No positives at all: F1 degenerates to 0 by convention.
            prop_assert_eq!(m.f1, 0.0);
        }
    }

    #[test]
    fn f1_never_exceeds_one(
        preds in proptest::collection::vec(any::<bool>(), 20),
        gold in proptest::collection::vec(any::<bool>(), 20),
    ) {
        let m = match_metrics(&preds, &gold);
        prop_assert!((0.0..=1.0).contains(&m.f1));
        prop_assert!((0.0..=1.0).contains(&m.precision));
        prop_assert!((0.0..=1.0).contains(&m.recall));
    }

    #[test]
    fn id_metrics_bounded(
        pred in proptest::collection::vec(0usize..5, 1..40),
        gold in proptest::collection::vec(0usize..5, 1..40),
    ) {
        let n = pred.len().min(gold.len());
        let m = id_metrics(&pred[..n], &gold[..n], &pred[..n], &gold[..n]);
        prop_assert!((0.0..=1.0).contains(&m.acc1));
        prop_assert!((0.0..=1.0).contains(&m.f1));
        prop_assert_eq!(m.acc1, m.acc2);
    }

    #[test]
    fn lrid_nonnegative_and_zero_iff_balanced(count in 1usize..500, classes in 2usize..12) {
        let balanced = vec![count; classes];
        prop_assert!(lrid(&balanced).abs() < 1e-9);
        let mut skewed = balanced.clone();
        skewed[0] += count * 3;
        prop_assert!(lrid(&skewed) > 0.0);
    }

    #[test]
    fn welch_t_test_p_values_are_probabilities(
        a in proptest::collection::vec(0.0f64..1.0, 3..10),
        b in proptest::collection::vec(0.0f64..1.0, 3..10),
    ) {
        let t = stats::welch_one_tailed(&a, &b);
        prop_assert!((0.0..=1.0).contains(&t.p), "p = {}", t.p);
        // Reversing the direction complements the p-value (up to ties).
        let rev = stats::welch_one_tailed(&b, &a);
        if t.t.is_finite() && t.t.abs() > 1e-9 {
            prop_assert!((t.p + rev.p - 1.0).abs() < 1e-6);
        }
    }
}
