//! # EMBA — Entity Matching using Multi-Task Learning of BERT with
//! # Attention-over-Attention
//!
//! A from-scratch Rust reproduction of Zhang, Sun & Ho (EDBT 2024). This
//! facade crate re-exports the whole workspace:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`tensor`] | `emba-tensor` | dense f32 tensors + reverse-mode autodiff |
//! | [`nn`] | `emba-nn` | layers, mini-BERT, GRU, Adam, MLM pre-training |
//! | [`tokenizer`] | `emba-tokenizer` | WordPiece + record serialization |
//! | [`datagen`] | `emba-datagen` | the ten synthetic benchmark datasets |
//! | [`core`] | `emba-core` | EMBA + every baseline, training, metrics, stats |
//! | [`serve`] | `emba-serve` | long-lived match serving: request coalescing + deadlines |
//! | [`explain`] | `emba-explain` | LIME and attention analyses |
//! | [`trace`] | `emba-trace` | training-run observability: JSONL logs + summaries |
//!
//! See `examples/quickstart.rs` for a five-minute tour, and the `emba-bench`
//! crate's `reproduce` binary for regenerating every table and figure of the
//! paper.
//!
//! ```no_run
//! use emba::core::{run_experiment, ExperimentConfig, ModelKind};
//! use emba::datagen::{build, DatasetId, Scale, WdcCategory, WdcSize};
//!
//! let ds = build(DatasetId::Wdc(WdcCategory::Computers, WdcSize::Small), Scale::TEST, 7);
//! let r = run_experiment(ModelKind::Emba, &ds, &ExperimentConfig::default());
//! println!("EMBA F1 = {:.1}", 100.0 * r.f1_mean);
//! ```

pub use emba_core as core;
pub use emba_datagen as datagen;
pub use emba_explain as explain;
pub use emba_nn as nn;
pub use emba_serve as serve;
pub use emba_tensor as tensor;
pub use emba_tokenizer as tokenizer;
pub use emba_trace as trace;
